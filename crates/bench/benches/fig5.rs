//! Figure 5: atomic-update rates.
//!
//! Paper point (§5.1): the PARSEC benchmarks perform orders of magnitude
//! fewer atomic updates than the irregular PBBS/Lonestar programs —
//! blackscholes ≈ 1 update/µs at 40 threads vs ≈ 100/µs for mis g-n. The
//! irregular rows are measured; the PARSEC-like rows come analytically from
//! the kernel instruction streams (DESIGN.md, substitution 3).

use coredet_sim::kernels::Kernel;
use galois_bench::drivers::Opts;
use galois_bench::tables::{f, Table};
use galois_bench::{max_threads, measure, scale, App, Variant};

fn main() {
    let scale = scale();
    let threads_hi = max_threads();
    println!("== Figure 5: atomic updates per microsecond (scale {scale}) ==\n");
    let mut table = Table::new(&["program", "variant", "threads", "atomics", "atomics/us"]);
    for k in Kernel::ALL.iter().filter(|k| k.is_parsec()) {
        for threads in [1usize, 40] {
            let streams = k.streams(threads, scale);
            let atomics: u64 = streams.iter().map(|s| s.syncs()).sum();
            table.row(vec![
                k.name().into(),
                "parsec".into(),
                threads.to_string(),
                atomics.to_string(),
                f(k.atomic_rate_per_us(threads)),
            ]);
        }
    }
    for app in App::ALL {
        for &variant in app.variants() {
            if variant == Variant::Seq {
                continue;
            }
            for threads in [1usize, threads_hi] {
                let Some(m) = measure(app, variant, threads, scale, Opts::default()) else {
                    continue;
                };
                table.row(vec![
                    app.name().into(),
                    variant.to_string(),
                    threads.to_string(),
                    m.atomic_updates.to_string(),
                    f(m.atomic_rate_per_us()),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!("expected shape: parsec rows orders of magnitude below the irregular rows");
}
