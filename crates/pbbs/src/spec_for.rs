//! Deterministic reservations: the PBBS `speculative_for` loop.
//!
//! Executes items `start..end` with the semantics of the *sequential* loop
//! in index order, in bulk-synchronous rounds: a prefix of the remaining
//! items runs [`Step::reserve`] in parallel (priority-writing item indices
//! into [`crate::Reservations`] slots), then [`Step::commit`] in parallel;
//! items whose commit fails are retried in later rounds, keeping their
//! original index (= priority). Because priorities are fixed and priority
//! writes are order-insensitive, the committed set of every round — and the
//! final state — is deterministic for any thread count.
//!
//! The prefix size is `granularity × remaining-item factor`, a per-call
//! tuning parameter: PBBS-style determinism is portable but **not**
//! parameter-free (changing the prefix changes performance, though not the
//! output *for race-free steps*; the paper contrasts this with the adaptive
//! DIG window).

use galois_runtime::pool::{chunk_range, run_on_threads};
use galois_runtime::simtime::RoundTrace;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One speculative step of a deterministic-reservations loop.
pub trait Step: Sync {
    /// Reservation phase for item `i`.
    ///
    /// Must only issue priority writes / reads; returns `false` if the item
    /// discovered it has nothing to do (it is dropped without a commit).
    fn reserve(&self, i: u64) -> bool;

    /// Commit phase for item `i`.
    ///
    /// Checks reservations and applies the item's effect if they held.
    /// Returns `true` when the item is done, `false` to retry it next round.
    fn commit(&self, i: u64) -> bool;
}

/// Statistics of one [`speculative_for`] execution.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SpecForStats {
    /// Bulk-synchronous rounds executed.
    pub rounds: u64,
    /// Commit-phase successes.
    pub committed: u64,
    /// Commit-phase failures (retries).
    pub aborted: u64,
    /// Reserve-phase invocations.
    pub reserved: u64,
    /// Per-round traces for the virtual-time model (filled when requested).
    pub round_traces: Vec<RoundTrace>,
}

impl SpecForStats {
    /// Abort ratio over all commit attempts.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }
}

/// Runs `step` over items `start..end` deterministically. See the module
/// docs.
///
/// `granularity` scales the round prefix: the prefix is
/// `max(threads, remaining/granularity_divisor)` where `granularity_divisor`
/// is `granularity.max(1)`. PBBS typically uses a fixed fraction (e.g. 50).
///
/// # Panics
///
/// Panics if `threads == 0` or `start > end`.
pub fn speculative_for(
    step: &impl Step,
    start: u64,
    end: u64,
    threads: usize,
    granularity: usize,
    record_trace: bool,
) -> SpecForStats {
    assert!(threads > 0);
    assert!(start <= end);
    let mut remaining: Vec<u64> = (start..end).collect();
    let mut stats = SpecForStats::default();
    let granularity = granularity.max(1);

    while !remaining.is_empty() {
        let prefix = remaining
            .len()
            .div_ceil(granularity)
            .max(threads.min(remaining.len()))
            .min(remaining.len());
        let cur = &remaining[..prefix];
        let keep: Vec<AtomicU64> = (0..prefix).map(|_| AtomicU64::new(0)).collect();
        let live: Vec<AtomicU64> = (0..prefix).map(|_| AtomicU64::new(1)).collect();
        let reserve_count = AtomicUsize::new(0);
        let t0 = record_trace.then(Instant::now);

        // Reserve phase.
        run_on_threads(threads, |tid| {
            let mut n = 0;
            for k in chunk_range(prefix, threads, tid) {
                n += 1;
                if !step.reserve(cur[k]) {
                    live[k].store(0, Ordering::Relaxed);
                }
            }
            reserve_count.fetch_add(n, Ordering::Relaxed);
        });
        let reserve_ns = t0.map(|t| t.elapsed().as_nanos() as f64);
        let t1 = record_trace.then(Instant::now);

        // Commit phase.
        run_on_threads(threads, |tid| {
            for k in chunk_range(prefix, threads, tid) {
                if live[k].load(Ordering::Relaxed) == 1 && !step.commit(cur[k]) {
                    keep[k].store(1, Ordering::Relaxed);
                }
            }
        });
        let commit_ns = t1.map(|t| t.elapsed().as_nanos() as f64);
        let t2 = record_trace.then(Instant::now);

        let mut next: Vec<u64> = Vec::with_capacity(remaining.len());
        let mut committed_round = 0u64;
        let mut dropped_round = 0u64;
        for k in 0..prefix {
            if keep[k].load(Ordering::Relaxed) == 1 {
                next.push(cur[k]);
            } else if live[k].load(Ordering::Relaxed) == 1 {
                committed_round += 1;
            } else {
                dropped_round += 1;
            }
        }
        let failed = next.len() as u64;
        next.extend_from_slice(&remaining[prefix..]);
        remaining = next;

        stats.rounds += 1;
        stats.reserved += reserve_count.load(Ordering::Relaxed) as u64;
        stats.committed += committed_round;
        stats.aborted += failed;
        let _ = dropped_round;
        if let (Some(r), Some(c)) = (reserve_ns, commit_ns) {
            stats.round_traces.push(RoundTrace {
                inspect: galois_runtime::simtime::PhaseTrace::uniform(r, prefix as u64),
                commit: galois_runtime::simtime::PhaseTrace::uniform(c, committed_round.max(1)),
                serial_ns: 0.0,
                sched_par_ns: t2.map(|t| t.elapsed().as_nanos() as f64).unwrap_or(0.0),
                barriers: 2,
            });
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reservations;
    use std::sync::atomic::AtomicU64 as Slot;

    /// Each item claims one bucket (i % b); sequential semantics: the lowest
    /// index claims each bucket.
    struct Buckets<'a> {
        r: &'a Reservations,
        owner: &'a [Slot],
        b: usize,
    }

    impl Step for Buckets<'_> {
        fn reserve(&self, i: u64) -> bool {
            self.r.reserve(i as usize % self.b, i);
            true
        }
        fn commit(&self, i: u64) -> bool {
            if self.r.check(i as usize % self.b, i) {
                self.owner[i as usize % self.b].store(i + 1, Ordering::Relaxed);
                true
            } else {
                // Lost to a lower index, which always commits: done.
                true
            }
        }
    }

    #[test]
    fn lowest_index_wins_each_bucket() {
        for threads in [1usize, 2, 4] {
            let r = Reservations::new(8);
            let owner: Vec<Slot> = (0..8).map(|_| Slot::new(0)).collect();
            let step = Buckets {
                r: &r,
                owner: &owner,
                b: 8,
            };
            let stats = speculative_for(&step, 0, 64, threads, 4, false);
            assert_eq!(stats.committed, 64, "threads={threads}");
            for (b, o) in owner.iter().enumerate() {
                assert_eq!(o.load(Ordering::Relaxed), b as u64 + 1, "bucket {b}");
            }
        }
    }

    #[test]
    fn reserve_false_drops_items() {
        struct Skip;
        impl Step for Skip {
            fn reserve(&self, i: u64) -> bool {
                i.is_multiple_of(2)
            }
            fn commit(&self, _i: u64) -> bool {
                true
            }
        }
        let stats = speculative_for(&Skip, 0, 100, 2, 4, false);
        assert_eq!(stats.committed, 50);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn retries_until_commit() {
        // Items fail their first commit attempt (simulated contention).
        struct FailOnce {
            tried: Vec<Slot>,
        }
        impl Step for FailOnce {
            fn reserve(&self, _i: u64) -> bool {
                true
            }
            fn commit(&self, i: u64) -> bool {
                self.tried[i as usize].fetch_add(1, Ordering::Relaxed) > 0
            }
        }
        let step = FailOnce {
            tried: (0..32).map(|_| Slot::new(0)).collect(),
        };
        let stats = speculative_for(&step, 0, 32, 3, 2, false);
        assert_eq!(stats.committed, 32);
        assert!(stats.aborted >= 32, "every item fails at least once");
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn trace_recording_counts_rounds() {
        struct Nop;
        impl Step for Nop {
            fn reserve(&self, _i: u64) -> bool {
                true
            }
            fn commit(&self, _i: u64) -> bool {
                true
            }
        }
        let stats = speculative_for(&Nop, 0, 100, 1, 4, true);
        assert_eq!(stats.round_traces.len() as u64, stats.rounds);
    }

    #[test]
    fn empty_range() {
        struct Nop;
        impl Step for Nop {
            fn reserve(&self, _i: u64) -> bool {
                true
            }
            fn commit(&self, _i: u64) -> bool {
                true
            }
        }
        let stats = speculative_for(&Nop, 5, 5, 2, 4, false);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.committed, 0);
    }
}
