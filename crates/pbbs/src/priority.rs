//! Priority writes: order-insensitive atomic minima.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomically lowers `slot` to `v` if `v` is smaller; returns whether `v`
/// won. The final value after any set of concurrent calls is the minimum of
/// all proposals — the deterministic combining primitive of PBBS.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let slot = AtomicU64::new(u64::MAX);
/// assert!(pbbs_det::priority::write_min(&slot, 9));
/// assert!(!pbbs_det::priority::write_min(&slot, 12));
/// assert!(pbbs_det::priority::write_min(&slot, 3));
/// assert_eq!(slot.load(Ordering::Relaxed), 3);
/// ```
#[inline]
pub fn write_min(slot: &AtomicU64, v: u64) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while v < cur {
        match slot.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically raises `slot` to `v` if `v` is larger; returns whether `v` won.
#[inline]
pub fn write_max(slot: &AtomicU64, v: u64) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while v > cur {
        match slot.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_runtime::run_on_threads;

    #[test]
    fn min_is_order_insensitive() {
        for perm in [[7u64, 2, 5], [5, 7, 2], [2, 5, 7]] {
            let slot = AtomicU64::new(u64::MAX);
            for v in perm {
                write_min(&slot, v);
            }
            assert_eq!(slot.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn concurrent_min_settles() {
        let slot = AtomicU64::new(u64::MAX);
        run_on_threads(8, |tid| {
            for k in 0..100u64 {
                write_min(&slot, (tid as u64 + 1) * 1000 + k);
            }
        });
        assert_eq!(slot.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn max_mirror() {
        let slot = AtomicU64::new(0);
        assert!(write_max(&slot, 5));
        assert!(!write_max(&slot, 3));
        assert_eq!(slot.load(Ordering::Relaxed), 5);
    }
}
