//! Determinism-by-construction building blocks in the style of the Problem
//! Based Benchmark Suite (PBBS).
//!
//! The paper compares DIG scheduling against *handwritten* deterministic
//! programs from PBBS (§4.1). Those programs are built from two idioms,
//! reproduced here:
//!
//! - **Priority writes** ([`Reservations`], [`crate::priority::write_min`]):
//!   an atomic min over item indices. The winner is the smallest index
//!   regardless of interleaving, so the result is deterministic.
//! - **Deterministic reservations** ([`speculative_for`]): a
//!   bulk-synchronous speculative loop. Each round, a prefix of the
//!   remaining items *reserves* the resources it needs with priority writes,
//!   then items whose reservations all held *commit*; losers retry in later
//!   rounds. With commits keyed on item index, the execution is equivalent
//!   to the sequential loop in index order — determinism by construction.
//!
//! Unlike DIG scheduling, the prefix size here is a per-application tuning
//! parameter (the paper calls this out: PBBS programs are *not*
//! parameter-free; see §6).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod priority;
pub mod reservations;
pub mod spec_for;

pub use reservations::Reservations;
pub use spec_for::{speculative_for, SpecForStats, Step};
