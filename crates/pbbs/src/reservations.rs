//! Per-resource reservation slots.

use crate::priority::write_min;
use std::sync::atomic::{AtomicU64, Ordering};

/// The value of an unreserved slot.
pub const FREE: u64 = u64::MAX;

/// An array of reservation slots, one per contended resource (node,
/// triangle, ...). Items reserve with their index; the smallest index wins.
///
/// # Example
///
/// ```
/// use pbbs_det::Reservations;
///
/// let r = Reservations::new(4);
/// r.reserve(2, 10);
/// r.reserve(2, 7); // lower index wins
/// assert!(!r.check(2, 10));
/// assert!(r.check(2, 7));
/// assert!(r.check_reset(2, 7));
/// assert!(r.check(2, pbbs_det::reservations::FREE));
/// ```
pub struct Reservations {
    slots: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Reservations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservations")
            .field("len", &self.slots.len())
            .finish()
    }
}

impl Reservations {
    /// Creates `len` free slots.
    pub fn new(len: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(FREE)).collect();
        Reservations {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Item `i` tries to reserve `slot`; the minimum index wins.
    #[inline]
    pub fn reserve(&self, slot: usize, i: u64) -> bool {
        write_min(&self.slots[slot], i)
    }

    /// Whether `slot` currently holds exactly `i`.
    #[inline]
    pub fn check(&self, slot: usize, i: u64) -> bool {
        self.slots[slot].load(Ordering::Acquire) == i
    }

    /// If `slot` holds `i`, frees it and returns true.
    #[inline]
    pub fn check_reset(&self, slot: usize, i: u64) -> bool {
        self.slots[slot]
            .compare_exchange(i, FREE, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Frees `slot` unconditionally.
    #[inline]
    pub fn free(&self, slot: usize) {
        self.slots[slot].store(FREE, Ordering::Release);
    }

    /// Whether every slot is free (postcondition checks).
    pub fn all_free(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Acquire) == FREE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_runtime::run_on_threads;

    #[test]
    fn lowest_index_wins_concurrently() {
        let r = Reservations::new(16);
        run_on_threads(8, |tid| {
            for s in 0..16 {
                r.reserve(s, (8 - tid) as u64 * 100 + s as u64);
            }
        });
        for s in 0..16 {
            assert!(r.check(s, 100 + s as u64), "slot {s}");
        }
    }

    #[test]
    fn check_reset_only_for_owner() {
        let r = Reservations::new(1);
        r.reserve(0, 5);
        assert!(!r.check_reset(0, 6));
        assert!(r.check_reset(0, 5));
        assert!(r.all_free());
    }

    #[test]
    fn free_unconditionally() {
        let r = Reservations::new(2);
        r.reserve(0, 1);
        r.free(0);
        assert!(r.all_free());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }
}
