//! Graph substrate for the Deterministic Galois reproduction.
//!
//! Provides the inputs and shared data structures of the graph benchmarks
//! (§4.2 of the paper):
//!
//! - [`csr`]: compressed sparse row graphs, the static topology for bfs, mis
//!   and preflow-push.
//! - [`array`](mod@array): atomic label arrays — shared per-node state mutated under the
//!   runtime's abstract-lock protocol (or with CAS in handwritten variants).
//! - [`gen`]: seeded generators for the paper's inputs — uniform random
//!   k-out graphs, 2-D grids, RMAT-style power-law graphs.
//! - [`flow`]: residual flow networks with paired reverse edges for
//!   preflow-push.
//! - [`io`]: DIMACS, edge-list and binary CSR readers/writers.
//! - [`cache`]: on-disk cache of generated inputs, keyed by generator
//!   name + parameters + seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod cache;
pub mod csr;
pub mod flow;
pub mod gen;
pub mod io;

pub use array::AtomicArray;
pub use csr::CsrGraph;
pub use flow::FlowNetwork;
