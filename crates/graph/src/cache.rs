//! On-disk input cache.
//!
//! The paper's workloads regenerate their inputs on every run (§4.2); with
//! the threads × seeds matrices the harness and bench drivers sweep, the
//! same graph may otherwise be generated hundreds of times per machine.
//! This module caches generated inputs under a directory, keyed by
//! **generator name + parameters + seed** — exactly the arguments that
//! determine the bytes, since every generator is a pure function of them.
//!
//! Two on-disk representations:
//!
//! - [`CsrGraph`]: the versioned binary CSR format of [`crate::io`]
//!   (`.gcsr`), loadable with two bulk reads.
//! - [`FlowNetwork`]: DIMACS max-flow text (`.dimacs`); the format
//!   round-trips the network exactly (arc order is preserved, so the
//!   rebuilt residual pairing is identical).
//!
//! A cache file that fails to decode — wrong magic, old version,
//! truncation, checksum mismatch — is treated as a miss and silently
//! regenerated and rewritten, never trusted. Writes go through a
//! temporary file and an atomic rename, so a crashed run cannot leave a
//! half-written cache entry behind.

use crate::csr::CsrGraph;
use crate::flow::FlowNetwork;
use crate::io::{read_csr_binary, read_dimacs_flow, write_csr_binary, write_dimacs_flow};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// File extension of binary CSR cache entries.
pub const GRAPH_EXT: &str = "gcsr";
/// File extension of DIMACS flow-network cache entries.
pub const FLOW_EXT: &str = "dimacs";

/// Environment variable naming the cache directory for callers that take
/// no explicit flag (the bench drivers).
pub const CACHE_DIR_ENV: &str = "GALOIS_CACHE_DIR";

/// What one cached load did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The input was decoded from a cache file; nothing was generated.
    Hit,
    /// The input was generated (no usable cache entry) and stored.
    MissStored,
    /// No cache directory was configured, or the input kind is not
    /// cacheable; the input was generated and nothing was stored.
    Disabled,
}

impl CacheOutcome {
    /// Whether this load decoded a cache file instead of generating.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::MissStored => "miss (stored)",
            CacheOutcome::Disabled => "disabled",
        })
    }
}

/// The cache directory named by [`CACHE_DIR_ENV`], if set and non-empty.
pub fn cache_dir_from_env() -> Option<PathBuf> {
    match std::env::var(CACHE_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// The file a graph key maps to inside `dir`.
///
/// # Panics
///
/// Panics if the key contains characters outside `[A-Za-z0-9._-]` — keys
/// are file names, and a path separator smuggled through a key must fail
/// loudly, not escape the cache directory.
pub fn entry_path(dir: &Path, key: &str, ext: &str) -> PathBuf {
    assert!(
        !key.is_empty()
            && key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')),
        "cache key {key:?} must be non-empty [A-Za-z0-9._-]"
    );
    dir.join(format!("{key}.{ext}"))
}

/// Stores `bytes_to` under `path` via a temporary file + atomic rename.
fn store(path: &Path, write: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>) {
    let Some(dir) = path.parent() else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("input cache: cannot create {}: {e}", dir.display());
        return;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = File::create(&tmp).and_then(|f| {
        let mut w = BufWriter::new(f);
        write(&mut w)?;
        std::io::Write::flush(&mut w)
    });
    let renamed = result.and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = renamed {
        eprintln!("input cache: cannot store {}: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Loads the graph `key` from `dir`, or generates it with `build` and
/// stores the result. With `dir == None`, just builds.
///
/// A present-but-undecodable entry (truncated, corrupt, wrong version) is
/// regenerated and overwritten.
pub fn load_or_build_graph(
    dir: Option<&Path>,
    key: &str,
    build: impl FnOnce() -> CsrGraph,
) -> (CsrGraph, CacheOutcome) {
    let Some(dir) = dir else {
        return (build(), CacheOutcome::Disabled);
    };
    let path = entry_path(dir, key, GRAPH_EXT);
    if let Ok(f) = File::open(&path) {
        match read_csr_binary(BufReader::new(f)) {
            Ok(g) => return (g, CacheOutcome::Hit),
            Err(e) => eprintln!("input cache: regenerating {}: {e}", path.display()),
        }
    }
    let g = build();
    store(&path, |w| write_csr_binary(&g, w));
    (g, CacheOutcome::MissStored)
}

/// Loads the flow network `key` from `dir`, or generates it with `build`
/// and stores the result (DIMACS text). With `dir == None`, just builds.
pub fn load_or_build_flow(
    dir: Option<&Path>,
    key: &str,
    build: impl FnOnce() -> FlowNetwork,
) -> (FlowNetwork, CacheOutcome) {
    let Some(dir) = dir else {
        return (build(), CacheOutcome::Disabled);
    };
    let path = entry_path(dir, key, FLOW_EXT);
    if let Ok(f) = File::open(&path) {
        match read_dimacs_flow(BufReader::new(f)) {
            Ok(net) => return (net, CacheOutcome::Hit),
            Err(e) => eprintln!("input cache: regenerating {}: {e}", path.display()),
        }
    }
    let net = build();
    store(&path, |w| write_dimacs_flow(&net, w));
    (net, CacheOutcome::MissStored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("galois-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn graph_miss_then_hit_round_trips() {
        let dir = tmp_dir("graph");
        let build = || gen::uniform_random(200, 4, 9);
        let (a, out_a) = load_or_build_graph(Some(&dir), "uniform-n200-d4-s9", build);
        assert_eq!(out_a, CacheOutcome::MissStored);
        let (b, out_b) = load_or_build_graph(Some(&dir), "uniform-n200-d4-s9", || {
            panic!("second load must not regenerate")
        });
        assert_eq!(out_b, CacheOutcome::Hit);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flow_miss_then_hit_preserves_max_flow() {
        let dir = tmp_dir("flow");
        let build = || FlowNetwork::random(48, 3, 40, 4);
        let (a, out_a) = load_or_build_flow(Some(&dir), "flowrand-n48-d3-c40-s4", build);
        assert_eq!(out_a, CacheOutcome::MissStored);
        let (b, out_b) = load_or_build_flow(Some(&dir), "flowrand-n48-d3-c40-s4", || {
            panic!("second load must not regenerate")
        });
        assert_eq!(out_b, CacheOutcome::Hit);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edmonds_karp(), b.edmonds_karp());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dir_disables() {
        let (g, out) = load_or_build_graph(None, "whatever", || gen::uniform_random(50, 2, 1));
        assert_eq!(out, CacheOutcome::Disabled);
        assert_eq!(g.num_nodes(), 50);
    }

    #[test]
    fn corrupt_entry_regenerates() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = entry_path(&dir, "k", GRAPH_EXT);
        std::fs::write(&path, b"not a graph").unwrap();
        let (g, out) = load_or_build_graph(Some(&dir), "k", || gen::uniform_random(30, 2, 2));
        assert_eq!(out, CacheOutcome::MissStored);
        assert_eq!(g, gen::uniform_random(30, 2, 2));
        // The bad entry was replaced by a good one.
        let (_, again) = load_or_build_graph(Some(&dir), "k", || panic!("should hit"));
        assert_eq!(again, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cache key")]
    fn path_separators_in_keys_panic() {
        entry_path(Path::new("/tmp"), "../escape", GRAPH_EXT);
    }
}
