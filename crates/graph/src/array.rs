//! Atomic label arrays.
//!
//! Per-node algorithm state (BFS distances, MIS membership, preflow heights)
//! lives in shared arrays. Under the Galois executors the abstract-lock
//! protocol already serializes access, so plain relaxed loads/stores suffice;
//! the handwritten deterministic variants additionally use the CAS-based
//! *priority write* (`write_min`) of the PBBS style.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A shared array of `u32` labels with atomic access.
///
/// # Example
///
/// ```
/// use galois_graph::AtomicArray;
///
/// let a = AtomicArray::new_filled(4, u32::MAX);
/// a.set(2, 7);
/// assert_eq!(a.get(2), 7);
/// assert!(a.write_min(2, 3), "3 < 7 wins");
/// assert!(!a.write_min(2, 5), "5 > 3 loses");
/// ```
pub struct AtomicArray {
    data: Box<[AtomicU32]>,
}

impl std::fmt::Debug for AtomicArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicArray")
            .field("len", &self.data.len())
            .finish()
    }
}

impl AtomicArray {
    /// Creates `len` labels, all `fill`.
    pub fn new_filled(len: usize, fill: u32) -> Self {
        let data: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(fill)).collect();
        AtomicArray {
            data: data.into_boxed_slice(),
        }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads label `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Writes label `i` (relaxed). Safe under an abstract lock covering `i`.
    #[inline]
    pub fn set(&self, i: usize, v: u32) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Atomically lowers label `i` to `v` if `v` is smaller (priority write).
    ///
    /// Returns whether `v` won. The final value after concurrent `write_min`
    /// calls is the minimum of all proposals — the order-insensitive
    /// primitive behind PBBS-style deterministic algorithms.
    #[inline]
    pub fn write_min(&self, i: usize, v: u32) -> bool {
        let slot = &self.data[i];
        let mut cur = slot.load(Ordering::Relaxed);
        while v < cur {
            match slot.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }

    /// Atomic compare-and-set, for handwritten variants.
    #[inline]
    pub fn cas(&self, i: usize, expect: u32, v: u32) -> bool {
        self.data[i]
            .compare_exchange(expect, v, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Copies the labels out (diagnostic / output hashing).
    pub fn snapshot(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets all labels to `fill`.
    pub fn fill(&self, fill: u32) {
        for x in self.data.iter() {
            x.store(fill, Ordering::Relaxed);
        }
    }
}

/// A shared array of `u64` counters with atomic add (preflow excess).
pub struct AtomicArray64 {
    data: Box<[AtomicU64]>,
}

impl std::fmt::Debug for AtomicArray64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicArray64")
            .field("len", &self.data.len())
            .finish()
    }
}

impl AtomicArray64 {
    /// Creates `len` counters, all `fill`.
    pub fn new_filled(len: usize, fill: u64) -> Self {
        let data: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(fill)).collect();
        AtomicArray64 {
            data: data.into_boxed_slice(),
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads counter `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Writes counter `i` (relaxed). Safe under an abstract lock covering `i`.
    #[inline]
    pub fn set(&self, i: usize, v: u64) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Atomically adds `v` to counter `i`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.data[i].fetch_add(v, Ordering::AcqRel)
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_min_settles_on_minimum_any_order() {
        for perm in [[5u32, 3, 9], [9, 5, 3], [3, 9, 5]] {
            let a = AtomicArray::new_filled(1, u32::MAX);
            for v in perm {
                a.write_min(0, v);
            }
            assert_eq!(a.get(0), 3);
        }
    }

    #[test]
    fn cas_semantics() {
        let a = AtomicArray::new_filled(1, 10);
        assert!(!a.cas(0, 11, 20));
        assert!(a.cas(0, 10, 20));
        assert_eq!(a.get(0), 20);
    }

    #[test]
    fn snapshot_and_fill() {
        let a = AtomicArray::new_filled(3, 1);
        a.set(1, 5);
        assert_eq!(a.snapshot(), vec![1, 5, 1]);
        a.fill(0);
        assert_eq!(a.snapshot(), vec![0, 0, 0]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn fetch_add_accumulates() {
        let a = AtomicArray64::new_filled(2, 0);
        assert_eq!(a.fetch_add(0, 5), 0);
        assert_eq!(a.fetch_add(0, 7), 5);
        assert_eq!(a.get(0), 12);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.snapshot(), vec![12, 0]);
    }
}
