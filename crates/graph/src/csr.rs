//! Compressed sparse row graphs.

use galois_runtime::pool::{chunk_range, run_on_threads};
use galois_runtime::scan::parallel_inclusive_scan_with;
use galois_runtime::shared::SharedSlice;
use galois_runtime::sort::parallel_sort_by_key;

/// A node id. Graphs in this suite are bounded to `u32::MAX` nodes, matching
//  the scaled-down inputs (DESIGN.md substitution 5).
pub type NodeId = u32;

/// Both directions of every non-self-loop edge, in input order.
fn symmetric_closure(edges: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
    let mut both: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
    for &(s, t) in edges {
        if s != t {
            both.push((s, t));
            both.push((t, s));
        }
    }
    both
}

/// An immutable directed graph in compressed sparse row form.
///
/// `offsets[v]..offsets[v+1]` indexes `targets` with `v`'s out-neighbors.
/// Neighbor order is the insertion order of the edge list, which makes graph
/// construction deterministic for deterministic inputs.
///
/// # Example
///
/// ```
/// use galois_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.neighbors(1), &[] as &[u32]);
/// assert_eq!(g.out_degree(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from a directed edge list.
    ///
    /// Edges keep their relative order within each source node (counting
    /// sort), so construction is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(s, t) in edges {
            assert!((s as usize) < n, "source {s} out of range");
            assert!((t as usize) < n, "target {t} out of range");
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; edges.len()];
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        CsrGraph { offsets, targets }
    }

    /// Parallel [`from_edges`](Self::from_edges): counting sort with
    /// per-thread histograms over contiguous edge chunks, a parallel prefix
    /// sum for the offsets, and an order-preserving parallel scatter.
    ///
    /// The result is **byte-identical** to `from_edges(n, edges)` for every
    /// `threads` value: edge chunks are contiguous and in order, and each
    /// thread's scatter cursor starts at `offsets[v] + (edges of v owned by
    /// earlier chunks)`, so every edge lands in exactly the slot the
    /// sequential counting sort would give it.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`, or if `edges.len() > u32::MAX`
    /// (the parallel cursor stitching uses 32-bit per-chunk counts; the
    /// suite's inputs are bounded far below this, matching [`NodeId`]).
    pub fn from_edges_parallel(n: usize, edges: &[(NodeId, NodeId)], threads: usize) -> Self {
        Self::from_edges_parallel_with_scratch(n, edges, threads, &mut Vec::new())
    }

    /// [`from_edges_parallel`](Self::from_edges_parallel) with a
    /// caller-owned prefix-sum scratch buffer, so multi-phase builders
    /// (e.g. [`crate::gen::rmat_parallel`]'s pack scan followed by this
    /// build) reuse one allocation across all their scans.
    pub(crate) fn from_edges_parallel_with_scratch(
        n: usize,
        edges: &[(NodeId, NodeId)],
        threads: usize,
        scan_scratch: &mut Vec<u64>,
    ) -> Self {
        let m = edges.len();
        // Small builds: the sequential oracle is faster than spawning.
        let threads = threads.clamp(1, m.div_ceil(8192).max(1));
        if threads == 1 {
            return Self::from_edges(n, edges);
        }
        assert!(
            u32::try_from(m).is_ok(),
            "parallel CSR build limited to u32::MAX edges"
        );

        // Phase 1: per-thread degree histograms over contiguous edge chunks.
        // Rows are allocated inside the worker so page-zeroing is parallel.
        let mut counts: Vec<Vec<u32>> = (0..threads).map(|_| Vec::new()).collect();
        {
            let slots = SharedSlice::new(&mut counts);
            let slots = &slots;
            run_on_threads(threads, |tid| {
                let mut local = vec![0u32; n];
                for &(s, t) in &edges[chunk_range(m, threads, tid)] {
                    assert!((s as usize) < n, "source {s} out of range");
                    assert!((t as usize) < n, "target {t} out of range");
                    local[s as usize] += 1;
                }
                // SAFETY: each tid writes only its own row slot.
                unsafe { *slots.get_mut(tid) = local };
            });
        }

        // Phase 2: offsets. `offsets[v + 1]` starts as v's total degree;
        // an inclusive scan over `offsets[1..]` then yields the CSR offsets
        // (`offsets[0]` stays 0). In the same pass each `counts[t][v]` is
        // replaced by the *within-node* base of chunk t — the number of
        // v-edges owned by earlier chunks — so the scatter phase needs no
        // cross-thread coordination.
        let mut offsets = vec![0u64; n + 1];
        {
            let shared_offsets = SharedSlice::new(&mut offsets);
            let shared_offsets = &shared_offsets;
            // Column-parallel pass over node chunks: thread `tid` owns the
            // columns (nodes) in its chunk range across every counts row.
            let count_rows: Vec<SharedSlice<'_, u32>> =
                counts.iter_mut().map(|row| SharedSlice::new(row)).collect();
            let count_rows = &count_rows;
            run_on_threads(threads, |tid| {
                for v in chunk_range(n, threads, tid) {
                    let mut running = 0u32;
                    for row in count_rows {
                        // SAFETY: column v is owned exclusively by this tid.
                        let slot = unsafe { row.get_mut(v) };
                        let c = *slot;
                        *slot = running;
                        running += c;
                    }
                    // SAFETY: slot v + 1 is written only by this tid.
                    unsafe { *shared_offsets.get_mut(v + 1) = running as u64 };
                }
            });
        }
        parallel_inclusive_scan_with(&mut offsets[1..], threads, scan_scratch);

        // Phase 3: scatter. Thread t walks its edge chunk in order, using
        // its (now exclusive) counts row as the per-node cursor.
        let mut targets = vec![0 as NodeId; m];
        {
            let shared_targets = SharedSlice::new(&mut targets);
            let shared_targets = &shared_targets;
            let offsets_ro: &[u64] = &offsets;
            let counts_rows = SharedSlice::new(&mut counts);
            let counts_rows = &counts_rows;
            run_on_threads(threads, |tid| {
                // SAFETY: row tid is touched only by thread tid in this phase.
                let cursor: &mut Vec<u32> = unsafe { counts_rows.get_mut(tid) };
                for &(s, t) in &edges[chunk_range(m, threads, tid)] {
                    let slot = offsets_ro[s as usize] + cursor[s as usize] as u64;
                    cursor[s as usize] += 1;
                    // SAFETY: `slot` is unique per edge: offsets partition
                    // by node, and the per-node cursors partition by chunk
                    // and edge rank within the chunk.
                    unsafe { *shared_targets.get_mut(slot as usize) = t };
                }
            });
        }
        CsrGraph { offsets, targets }
    }

    /// Builds the undirected (symmetrized) version of an edge list: both
    /// directions are present and duplicate edges are removed.
    pub fn symmetrized(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut both = symmetric_closure(edges);
        both.sort_unstable();
        both.dedup();
        Self::from_edges(n, &both)
    }

    /// Parallel [`symmetrized`](Self::symmetrized): the doubled edge list is
    /// sorted with the runtime's deterministic parallel stable sort (ties
    /// are equal pairs, so stable and unstable orders coincide), deduped,
    /// and built with [`from_edges_parallel`](Self::from_edges_parallel).
    /// Byte-identical to the sequential version for every thread count.
    pub fn symmetrized_parallel(n: usize, edges: &[(NodeId, NodeId)], threads: usize) -> Self {
        let mut both = symmetric_closure(edges);
        parallel_sort_by_key(&mut both, threads, |&pair| pair);
        both.dedup();
        Self::from_edges_parallel(n, &both, threads)
    }

    /// Reassembles a graph from raw CSR arrays (the binary cache reader).
    ///
    /// Returns `None` if the arrays are not structurally consistent (see
    /// [`validate`](Self::validate)).
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<NodeId>) -> Option<Self> {
        let g = CsrGraph { offsets, targets };
        g.validate().then_some(g)
    }

    /// Assembles a graph from CSR arrays whose consistency the caller has
    /// proven by construction (e.g. a constant-out-degree generator whose
    /// offsets are closed-form). Skips the O(nodes + edges) [`validate`]
    /// pass that [`from_parts`](Self::from_parts) pays; debug builds still
    /// check.
    ///
    /// [`validate`]: Self::validate
    pub(crate) fn from_parts_unchecked(offsets: Vec<u64>, targets: Vec<NodeId>) -> Self {
        let g = CsrGraph { offsets, targets };
        debug_assert!(g.validate(), "from_parts_unchecked got inconsistent CSR");
        g
    }

    /// The raw CSR offset array (`num_nodes() + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw CSR target array, indexed by [`offsets`](Self::offsets).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`, in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Hints the hardware prefetcher at `v`'s neighbor row.
    ///
    /// CSR traversals visit rows in frontier order, which is effectively
    /// random on the random-graph inputs — each row is a guaranteed cache
    /// miss. Issuing the prefetch for frontier vertex `i + 1` while
    /// processing vertex `i` overlaps that miss with useful work. A pure
    /// hint: no-op on non-x86_64 targets, never faults.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn prefetch_row(&self, v: NodeId) {
        let lo = self.offsets[v as usize] as usize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `_mm_prefetch` is a hint and cannot fault; the pointer is
        // computed with `wrapping_add`, so even the empty-tail-row case
        // (lo == targets.len()) involves no out-of-bounds arithmetic UB.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                self.targets.as_ptr().wrapping_add(lo) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = lo;
    }

    /// Single-source shortest hop distances; `u32::MAX` marks unreachable
    /// nodes. Reference implementation for validating the parallel variants.
    ///
    /// Level-synchronous with two flat frontier buffers (swapped per level)
    /// instead of a ring-buffer queue: the frontier is scanned linearly, the
    /// next vertex's neighbor row is prefetched while the current one is
    /// expanded, and the hot loop carries a single branch (the unvisited
    /// check). Distances are identical to the queue formulation — BFS level
    /// sets do not depend on intra-level order.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        dist[source as usize] = 0;
        let mut frontier: Vec<NodeId> = vec![source];
        let mut next: Vec<NodeId> = Vec::new();
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            for (i, &v) in frontier.iter().enumerate() {
                if let Some(&ahead) = frontier.get(i + 1) {
                    self.prefetch_row(ahead);
                }
                for &w in self.neighbors(v) {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = depth;
                        next.push(w);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        dist
    }

    /// Whether the CSR arrays are structurally consistent (diagnostic).
    pub fn validate(&self) -> bool {
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return false;
        }
        if *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let n = self.num_nodes() as NodeId;
        self.targets.iter().all(|&t| t < n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate());
    }

    #[test]
    fn neighbor_order_is_insertion_order() {
        let g = CsrGraph::from_edges(4, &[(1, 3), (0, 2), (1, 0), (1, 2)]);
        assert_eq!(g.neighbors(1), &[3, 0, 2]);
        assert!(g.validate());
    }

    #[test]
    fn symmetrized_has_both_directions_no_dups() {
        let g = CsrGraph::symmetrized(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2], "self-loop removed");
        assert!(g.validate());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.bfs_distances(2), vec![2, 3, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Adversarial shape: skewed degrees, duplicates, self loops, and
        // enough edges to defeat the small-input sequential fallback.
        let n = 50;
        let edges: Vec<(NodeId, NodeId)> = (0..40_000u64)
            .map(|i| {
                let s = ((i * i) % 7 * 7 + i % 3) % n as u64;
                let t = (i * 31) % n as u64;
                (s as NodeId, t as NodeId)
            })
            .collect();
        let seq = CsrGraph::from_edges(n, &edges);
        for threads in [1, 2, 5, 8, 16] {
            let par = CsrGraph::from_edges_parallel(n, &edges, threads);
            assert_eq!(par.offsets, seq.offsets, "offsets at {threads} threads");
            assert_eq!(par.targets, seq.targets, "targets at {threads} threads");
        }
    }

    #[test]
    fn parallel_symmetrized_matches_sequential() {
        let edges: Vec<(NodeId, NodeId)> = (0..30_000u64)
            .map(|i| (((i * 13) % 64) as NodeId, ((i * 29 + 7) % 64) as NodeId))
            .collect();
        let seq = CsrGraph::symmetrized(64, &edges);
        for threads in [2, 5, 8] {
            assert_eq!(CsrGraph::symmetrized_parallel(64, &edges, threads), seq);
        }
    }

    #[test]
    fn from_parts_validates() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 0)]);
        let rebuilt = CsrGraph::from_parts(g.offsets().to_vec(), g.targets().to_vec()).unwrap();
        assert_eq!(rebuilt, g);
        assert!(CsrGraph::from_parts(vec![0, 2], vec![1]).is_none(), "count");
        assert!(CsrGraph::from_parts(vec![1, 1], vec![]).is_none(), "base");
        assert!(
            CsrGraph::from_parts(vec![0, 1], vec![7]).is_none(),
            "target range"
        );
    }

    #[test]
    fn degrees_sum_to_edges() {
        let edges = [(0u32, 1u32), (0, 0), (2, 1), (2, 0), (2, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        let total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        assert_eq!(total, edges.len());
    }
}
