//! Compressed sparse row graphs.

/// A node id. Graphs in this suite are bounded to `u32::MAX` nodes, matching
//  the scaled-down inputs (DESIGN.md substitution 5).
pub type NodeId = u32;

/// An immutable directed graph in compressed sparse row form.
///
/// `offsets[v]..offsets[v+1]` indexes `targets` with `v`'s out-neighbors.
/// Neighbor order is the insertion order of the edge list, which makes graph
/// construction deterministic for deterministic inputs.
///
/// # Example
///
/// ```
/// use galois_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.neighbors(1), &[] as &[u32]);
/// assert_eq!(g.out_degree(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from a directed edge list.
    ///
    /// Edges keep their relative order within each source node (counting
    /// sort), so construction is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(s, t) in edges {
            assert!((s as usize) < n, "source {s} out of range");
            assert!((t as usize) < n, "target {t} out of range");
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; edges.len()];
        for &(s, t) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = t;
            *c += 1;
        }
        CsrGraph { offsets, targets }
    }

    /// Builds the undirected (symmetrized) version of an edge list: both
    /// directions are present and duplicate edges are removed.
    pub fn symmetrized(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut both: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
        for &(s, t) in edges {
            if s != t {
                both.push((s, t));
                both.push((t, s));
            }
        }
        both.sort_unstable();
        both.dedup();
        Self::from_edges(n, &both)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`, in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Single-source shortest hop distances by sequential BFS;
    /// `u32::MAX` marks unreachable nodes. Reference implementation for
    /// validating the parallel variants.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[source as usize] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Whether the CSR arrays are structurally consistent (diagnostic).
    pub fn validate(&self) -> bool {
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return false;
        }
        if *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let n = self.num_nodes() as NodeId;
        self.targets.iter().all(|&t| t < n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate());
    }

    #[test]
    fn neighbor_order_is_insertion_order() {
        let g = CsrGraph::from_edges(4, &[(1, 3), (0, 2), (1, 0), (1, 2)]);
        assert_eq!(g.neighbors(1), &[3, 0, 2]);
        assert!(g.validate());
    }

    #[test]
    fn symmetrized_has_both_directions_no_dups() {
        let g = CsrGraph::symmetrized(4, &[(0, 1), (1, 0), (2, 3), (3, 3)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2], "self-loop removed");
        assert!(g.validate());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.bfs_distances(2), vec![2, 3, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn degrees_sum_to_edges() {
        let edges = [(0u32, 1u32), (0, 0), (2, 1), (2, 0), (2, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        let total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        assert_eq!(total, edges.len());
    }
}
