//! Seeded graph generators for the paper's inputs (§4.2).
//!
//! - bfs / mis: "a random graph of 10 million nodes where each node is
//!   connected to five randomly selected nodes" — [`uniform_random`].
//! - pfp: "a random graph of 2^23 nodes with each node connected to 4 random
//!   neighbors" — [`uniform_random`] plus capacities in [`crate::flow`].
//! - Extra shapes for tests and ablations: [`grid2d`], [`rmat`].
//!
//! All generators are deterministic in their seed.

use crate::csr::{CsrGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Directed edge list where each node points to `degree` uniformly random
/// distinct-from-self targets (duplicates between targets allowed, matching
/// the PBBS generator).
pub fn uniform_random_edges(n: usize, degree: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2 || degree == 0, "need at least two nodes for edges");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for s in 0..n as NodeId {
        for _ in 0..degree {
            let mut t = rng.random_range(0..n as NodeId);
            if t == s {
                t = (t + 1) % n as NodeId;
            }
            edges.push((s, t));
        }
    }
    edges
}

/// The paper's random k-out graph, as a CSR graph.
pub fn uniform_random(n: usize, degree: usize, seed: u64) -> CsrGraph {
    CsrGraph::from_edges(n, &uniform_random_edges(n, degree, seed))
}

/// Undirected (symmetrized) random k-out graph — the mis input.
pub fn uniform_random_undirected(n: usize, degree: usize, seed: u64) -> CsrGraph {
    CsrGraph::symmetrized(n, &uniform_random_edges(n, degree, seed))
}

/// A `w × h` 4-neighbor grid, undirected. High-locality topology used by the
/// locality ablations.
pub fn grid2d(w: usize, h: usize) -> CsrGraph {
    let n = w * h;
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    CsrGraph::symmetrized(n, &edges)
}

/// RMAT-style power-law graph (Chakrabarti et al. parameters `a,b,c`;
/// `d = 1 - a - b - c`). Node count is rounded up to a power of two.
///
/// # Panics
///
/// Panics if `a + b + c > 1`.
pub fn rmat(n: usize, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(a + b + c <= 1.0 + 1e-9, "rmat probabilities exceed 1");
    let scale = (n.max(2) as f64).log2().ceil() as u32;
    let size = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut x0, mut x1) = (0usize, size);
        let (mut y0, mut y1) = (0usize, size);
        while x1 - x0 > 1 {
            let r: f64 = rng.random();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (1, 0)
            } else if r < a + b + c {
                (0, 1)
            } else {
                (1, 1)
            };
            let mx = (x0 + x1) / 2;
            let my = (y0 + y1) / 2;
            if dx == 0 {
                x1 = mx;
            } else {
                x0 = mx;
            }
            if dy == 0 {
                y1 = my;
            } else {
                y0 = my;
            }
        }
        if x0 != y0 {
            edges.push((x0 as NodeId, y0 as NodeId));
        }
    }
    CsrGraph::from_edges(size, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_shape() {
        let g = uniform_random(100, 5, 42);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 5);
            assert!(g.neighbors(v).iter().all(|&t| t != v), "no self loops");
        }
        assert!(g.validate());
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = uniform_random(200, 4, 7);
        let b = uniform_random(200, 4, 7);
        let c = uniform_random(200, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn undirected_is_symmetric() {
        let g = uniform_random_undirected(64, 3, 1);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "missing reverse {w}->{v}");
            }
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(3, 3);
        assert_eq!(g.num_nodes(), 9);
        // Corners 2, edges 3, center 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(4), 4);
        assert!(g.validate());
    }

    #[test]
    fn grid_is_connected() {
        let g = grid2d(7, 5);
        let d = g.bfs_distances(0);
        assert!(d.iter().all(|&x| x != u32::MAX));
        assert_eq!(d[34], 6 + 4); // opposite corner: manhattan distance
    }

    #[test]
    fn rmat_generates_skewed_degrees() {
        let g = rmat(1 << 10, 8 * (1 << 10), 0.57, 0.19, 0.19, 3);
        assert!(g.validate());
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "power-law graph should have hubs (max {max_deg}, avg {avg:.1})"
        );
    }
}
