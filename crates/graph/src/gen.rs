//! Seeded graph generators for the paper's inputs (§4.2).
//!
//! - bfs / mis: "a random graph of 10 million nodes where each node is
//!   connected to five randomly selected nodes" — [`uniform_random`].
//! - pfp: "a random graph of 2^23 nodes with each node connected to 4 random
//!   neighbors" — [`uniform_random`] plus capacities in [`crate::flow`].
//! - Extra shapes for tests and ablations: [`grid2d`], [`rmat`].
//!
//! # Determinism contract
//!
//! All generators are deterministic in their seed, and every generator
//! draws from **counter-based per-unit RNG streams** (`seed ⊕ node id`, or
//! `seed ⊕ edge id` for RMAT) rather than one sequential stream. That makes
//! the work embarrassingly parallel without changing the output: the
//! `*_parallel` variants fan the same per-unit streams over the runtime's
//! scoped pool and are **byte-identical** to their sequential counterparts
//! for every thread count — the PBBS notion of internal determinism
//! ("All for One and One for All", PAPERS.md), applied to input setup. The
//! sequential functions stay as the oracles the parallel paths are tested
//! against (`crates/graph/tests/parallel_build.rs`).

use crate::csr::{CsrGraph, NodeId};
use galois_runtime::pool::{chunk_range, run_on_threads};
use galois_runtime::scan::parallel_exclusive_scan_with;
use galois_runtime::shared::SharedSlice;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The RNG stream owned by counter `c` (a node or edge id) under `seed`.
///
/// The golden-ratio multiply decorrelates adjacent counters before the
/// SplitMix64 finalizer inside `seed_from_u64`; `c + 1` keeps counter 0
/// from collapsing onto the bare seed.
pub fn counter_stream(seed: u64, c: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ c.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Draws a uniformly random node `!= s`: drawing from `n - 1` candidates
/// and shifting past `s` gives every other node probability `1/(n-1)`,
/// unlike the old `(t + 1) % n` redirect, which silently gave `s + 1` a
/// doubled share.
#[inline]
fn draw_non_self(rng: &mut SmallRng, n: usize, s: NodeId) -> NodeId {
    let t = rng.random_range(0..(n - 1) as NodeId);
    if t >= s {
        t + 1
    } else {
        t
    }
}

/// Writes node `s`'s `degree` out-edges into `out` (length `degree`).
#[inline]
fn fill_uniform_node(out: &mut [(NodeId, NodeId)], n: usize, s: NodeId, degree: usize, seed: u64) {
    let mut rng = counter_stream(seed, s as u64);
    for slot in out.iter_mut().take(degree) {
        *slot = (s, draw_non_self(&mut rng, n, s));
    }
}

/// Directed edge list where each node points to `degree` uniformly random
/// distinct-from-self targets (duplicates between targets allowed, matching
/// the PBBS generator). Sequential oracle for
/// [`uniform_random_edges_parallel`].
pub fn uniform_random_edges(n: usize, degree: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2 || degree == 0, "need at least two nodes for edges");
    let mut edges = vec![(0 as NodeId, 0 as NodeId); n * degree];
    for s in 0..n {
        fill_uniform_node(
            &mut edges[s * degree..(s + 1) * degree],
            n,
            s as NodeId,
            degree,
            seed,
        );
    }
    edges
}

/// Parallel [`uniform_random_edges`]: nodes are fanned over `threads`
/// threads, each node drawing from its own counter stream, so the edge
/// list is byte-identical for any thread count.
pub fn uniform_random_edges_parallel(
    n: usize,
    degree: usize,
    seed: u64,
    threads: usize,
) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2 || degree == 0, "need at least two nodes for edges");
    let threads = threads.clamp(1, (n * degree).div_ceil(8192).max(1));
    if threads == 1 {
        return uniform_random_edges(n, degree, seed);
    }
    let mut edges = vec![(0 as NodeId, 0 as NodeId); n * degree];
    {
        let shared = SharedSlice::new(&mut edges);
        let shared = &shared;
        run_on_threads(threads, |tid| {
            for s in chunk_range(n, threads, tid) {
                // SAFETY: node ranges are disjoint across tids, so the edge
                // slots [s*degree, (s+1)*degree) are owned by this thread.
                let row = unsafe { shared.slice_mut(s * degree..(s + 1) * degree) };
                fill_uniform_node(row, n, s as NodeId, degree, seed);
            }
        });
    }
    edges
}

/// The edge slots owned by nodes `range` of [`uniform_random_edges`] —
/// exactly one worker's share of the parallel fill under a static
/// partition. Exists so a single-core host can measure the per-chunk
/// critical path of the parallel generator directly (bench `gen`):
/// concatenating the chunks of any partition of `0..n` reproduces the
/// full edge list byte for byte.
pub fn uniform_random_edges_range(
    n: usize,
    degree: usize,
    seed: u64,
    range: std::ops::Range<usize>,
) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2 || degree == 0, "need at least two nodes for edges");
    assert!(range.end <= n);
    let mut edges = vec![(0 as NodeId, 0 as NodeId); range.len() * degree];
    for (i, s) in range.enumerate() {
        fill_uniform_node(
            &mut edges[i * degree..(i + 1) * degree],
            n,
            s as NodeId,
            degree,
            seed,
        );
    }
    edges
}

/// The paper's random k-out graph, as a CSR graph.
pub fn uniform_random(n: usize, degree: usize, seed: u64) -> CsrGraph {
    CsrGraph::from_edges(n, &uniform_random_edges(n, degree, seed))
}

/// Parallel [`uniform_random`], **fused**: generation writes straight into
/// the final CSR arrays, byte-identical to the sequential version for any
/// thread count.
///
/// The old pipeline materialized the edge list, re-read it in a counting
/// pass, and scattered it — three passes over `n * degree` tuples, which is
/// why the end-to-end parallel build used to lose to the sequential one on
/// oversubscribed hosts. Constant out-degree makes all of that unnecessary:
/// the CSR offsets are closed-form (`offsets[v] = v * degree`), and node
/// `s`'s counter stream can be drawn directly into its target row
/// `targets[s*degree .. (s+1)*degree]`. One parallel pass, no intermediate
/// edge list. The result matches `from_edges(n, uniform_random_edges(..))`
/// byte for byte because the counting sort preserves per-source insertion
/// order — exactly the per-stream draw order reproduced here.
pub fn uniform_random_parallel(n: usize, degree: usize, seed: u64, threads: usize) -> CsrGraph {
    assert!(n >= 2 || degree == 0, "need at least two nodes for edges");
    let m = n * degree;
    let threads = threads.clamp(1, m.div_ceil(8192).max(1));
    if threads == 1 {
        return uniform_random(n, degree, seed);
    }
    let mut offsets = vec![0u64; n + 1];
    let mut targets = vec![0 as NodeId; m];
    {
        let offs = SharedSlice::new(&mut offsets);
        let tgts = SharedSlice::new(&mut targets);
        let (offs, tgts) = (&offs, &tgts);
        run_on_threads(threads, |tid| {
            for v in chunk_range(n + 1, threads, tid) {
                // SAFETY: offset chunks are disjoint across tids.
                unsafe { *offs.get_mut(v) = (v * degree) as u64 };
            }
            for s in chunk_range(n, threads, tid) {
                // SAFETY: node ranges are disjoint across tids, so the
                // target row [s*degree, (s+1)*degree) is owned here.
                let row = unsafe { tgts.slice_mut(s * degree..(s + 1) * degree) };
                let mut rng = counter_stream(seed, s as u64);
                for slot in row {
                    *slot = draw_non_self(&mut rng, n, s as NodeId);
                }
            }
        });
    }
    CsrGraph::from_parts_unchecked(offsets, targets)
}

/// Undirected (symmetrized) random k-out graph — the mis input.
pub fn uniform_random_undirected(n: usize, degree: usize, seed: u64) -> CsrGraph {
    CsrGraph::symmetrized(n, &uniform_random_edges(n, degree, seed))
}

/// Parallel [`uniform_random_undirected`], byte-identical to the
/// sequential version for any thread count.
pub fn uniform_random_undirected_parallel(
    n: usize,
    degree: usize,
    seed: u64,
    threads: usize,
) -> CsrGraph {
    let edges = uniform_random_edges_parallel(n, degree, seed, threads);
    CsrGraph::symmetrized_parallel(n, &edges, threads)
}

/// Number of edges row `y` of a `w × h` grid emits, and the offset of its
/// first edge in the directed edge list.
fn grid_row_shape(w: usize, h: usize, y: usize) -> (usize, usize) {
    let horizontal = w.saturating_sub(1);
    let full_row = horizontal + w; // horizontal + vertical links
    let len = if y + 1 < h { full_row } else { horizontal };
    (y * full_row, len)
}

/// Writes row `y`'s directed grid edges in the canonical x-major order.
fn fill_grid_row(out: &mut [(NodeId, NodeId)], w: usize, h: usize, y: usize) {
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut k = 0;
    for x in 0..w {
        if x + 1 < w {
            out[k] = (id(x, y), id(x + 1, y));
            k += 1;
        }
        if y + 1 < h {
            out[k] = (id(x, y), id(x, y + 1));
            k += 1;
        }
    }
    debug_assert_eq!(k, out.len());
}

/// A `w × h` 4-neighbor grid, undirected. High-locality topology used by the
/// locality ablations.
pub fn grid2d(w: usize, h: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for y in 0..h {
        let (_, len) = grid_row_shape(w, h, y);
        let start = edges.len();
        edges.resize(start + len, (0, 0));
        fill_grid_row(&mut edges[start..], w, h, y);
    }
    CsrGraph::symmetrized(w * h, &edges)
}

/// Parallel [`grid2d`]: rows are fanned over threads (each row's edge range
/// is computable in closed form), then built with the parallel symmetrizer.
/// Byte-identical to the sequential version for any thread count.
pub fn grid2d_parallel(w: usize, h: usize, threads: usize) -> CsrGraph {
    let total: usize = (0..h).map(|y| grid_row_shape(w, h, y).1).sum();
    let threads = threads.clamp(1, total.div_ceil(8192).max(1));
    if threads == 1 {
        return grid2d(w, h);
    }
    let mut edges = vec![(0 as NodeId, 0 as NodeId); total];
    {
        let shared = SharedSlice::new(&mut edges);
        let shared = &shared;
        run_on_threads(threads, |tid| {
            for y in chunk_range(h, threads, tid) {
                let (start, len) = grid_row_shape(w, h, y);
                // SAFETY: row ranges are disjoint across tids.
                let row = unsafe { shared.slice_mut(start..start + len) };
                fill_grid_row(row, w, h, y);
            }
        });
    }
    CsrGraph::symmetrized_parallel(w * h, &edges, threads)
}

/// One RMAT dive: recursively picks a quadrant per level from edge `i`'s
/// own counter stream; returns the edge, or `None` for a self loop.
fn rmat_edge(seed: u64, i: u64, size: usize, a: f64, b: f64, c: f64) -> Option<(NodeId, NodeId)> {
    let mut rng = counter_stream(seed, i);
    let (mut x0, mut x1) = (0usize, size);
    let (mut y0, mut y1) = (0usize, size);
    while x1 - x0 > 1 {
        let r: f64 = rng.random();
        let (dx, dy) = if r < a {
            (0, 0)
        } else if r < a + b {
            (1, 0)
        } else if r < a + b + c {
            (0, 1)
        } else {
            (1, 1)
        };
        let mx = (x0 + x1) / 2;
        let my = (y0 + y1) / 2;
        if dx == 0 {
            x1 = mx;
        } else {
            x0 = mx;
        }
        if dy == 0 {
            y1 = my;
        } else {
            y0 = my;
        }
    }
    (x0 != y0).then_some((x0 as NodeId, y0 as NodeId))
}

fn rmat_scale(n: usize) -> usize {
    1usize << (n.max(2) as f64).log2().ceil() as u32
}

/// RMAT-style power-law graph (Chakrabarti et al. parameters `a,b,c`;
/// `d = 1 - a - b - c`). Node count is rounded up to a power of two.
/// Each candidate edge draws from its own counter stream; self loops are
/// dropped. Sequential oracle for [`rmat_parallel`].
///
/// # Panics
///
/// Panics if `a + b + c > 1`.
pub fn rmat(n: usize, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(a + b + c <= 1.0 + 1e-9, "rmat probabilities exceed 1");
    let size = rmat_scale(n);
    let edges: Vec<(NodeId, NodeId)> = (0..num_edges as u64)
        .filter_map(|i| rmat_edge(seed, i, size, a, b, c))
        .collect();
    CsrGraph::from_edges(size, &edges)
}

/// Parallel [`rmat`]: candidate edges are fanned over threads, surviving
/// edges packed back into candidate order with a parallel prefix sum over
/// the per-chunk counts. Byte-identical to the sequential version for any
/// thread count.
///
/// # Panics
///
/// Panics if `a + b + c > 1`.
pub fn rmat_parallel(
    n: usize,
    num_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    threads: usize,
) -> CsrGraph {
    assert!(a + b + c <= 1.0 + 1e-9, "rmat probabilities exceed 1");
    let threads = threads.clamp(1, num_edges.div_ceil(8192).max(1));
    if threads == 1 {
        return rmat(n, num_edges, a, b, c, seed);
    }
    let size = rmat_scale(n);

    // Phase 1: each thread dives its chunk of candidate edges.
    let mut locals: Vec<Vec<(NodeId, NodeId)>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let slots = SharedSlice::new(&mut locals);
        let slots = &slots;
        run_on_threads(threads, |tid| {
            let local: Vec<(NodeId, NodeId)> = chunk_range(num_edges, threads, tid)
                .filter_map(|i| rmat_edge(seed, i as u64, size, a, b, c))
                .collect();
            // SAFETY: each tid writes only its own slot.
            unsafe { *slots.get_mut(tid) = local };
        });
    }

    // Phase 2: pack surviving edges contiguously in candidate order. The
    // scan scratch is shared with the CSR build below (one allocation for
    // every prefix sum of the pipeline).
    let mut scan_scratch: Vec<u64> = Vec::new();
    let mut positions: Vec<u64> = locals.iter().map(|l| l.len() as u64).collect();
    let total = parallel_exclusive_scan_with(&mut positions, threads, &mut scan_scratch) as usize;
    let mut edges = vec![(0 as NodeId, 0 as NodeId); total];
    {
        let shared = SharedSlice::new(&mut edges);
        let shared = &shared;
        let locals = &locals;
        let positions = &positions;
        run_on_threads(threads, |tid| {
            let start = positions[tid] as usize;
            // SAFETY: output ranges are disjoint across tids.
            let out = unsafe { shared.slice_mut(start..start + locals[tid].len()) };
            out.copy_from_slice(&locals[tid]);
        });
    }
    CsrGraph::from_edges_parallel_with_scratch(size, &edges, threads, &mut scan_scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_range_chunks_concatenate_to_the_full_list() {
        let full = uniform_random_edges(103, 3, 5);
        let mut glued = Vec::new();
        for chunk in [0..29usize, 29..64, 64..103] {
            glued.extend(uniform_random_edges_range(103, 3, 5, chunk));
        }
        assert_eq!(full, glued);
    }

    #[test]
    fn uniform_random_shape() {
        let g = uniform_random(100, 5, 42);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 5);
            assert!(g.neighbors(v).iter().all(|&t| t != v), "no self loops");
        }
        assert!(g.validate());
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = uniform_random(200, 4, 7);
        let b = uniform_random(200, 4, 7);
        let c = uniform_random(200, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn undirected_is_symmetric() {
        let g = uniform_random_undirected(64, 3, 1);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "missing reverse {w}->{v}");
            }
        }
    }

    #[test]
    fn self_loop_redirect_is_unbiased() {
        // With the old `(t + 1) % n` redirect, target `s + 1` received the
        // self-draw's probability mass on top of its own: a 2/n share where
        // every other node got 1/n. The shifted draw gives each of the
        // n - 1 legal targets exactly 1/(n-1). With 20k draws over 7 bins
        // (expected 2857 each, σ ≈ 50), a ±10% band is ~5.7σ: tight enough
        // to catch the doubled successor share, loose enough to never flake
        // (the seed is fixed anyway).
        let (n, degree) = (8usize, 20_000usize);
        let edges = uniform_random_edges(n, degree, 1234);
        for s in 0..n as NodeId {
            let mut counts = vec![0usize; n];
            for &(src, t) in &edges {
                if src == s {
                    counts[t as usize] += 1;
                }
            }
            assert_eq!(counts[s as usize], 0, "self loop from {s}");
            let expect = degree as f64 / (n - 1) as f64;
            for (t, &c) in counts.iter().enumerate() {
                if t == s as usize {
                    continue;
                }
                assert!(
                    (c as f64) > 0.9 * expect && (c as f64) < 1.1 * expect,
                    "target {t} of source {s} drawn {c} times, expected ~{expect:.0}"
                );
            }
        }
    }

    #[test]
    fn parallel_uniform_random_is_thread_count_invariant() {
        let seq = uniform_random_edges(500, 5, 99);
        for threads in [1, 2, 5, 8, 16] {
            assert_eq!(
                uniform_random_edges_parallel(500, 5, 99, threads),
                seq,
                "edges diverged at {threads} threads"
            );
        }
        let g = uniform_random(500, 5, 99);
        assert_eq!(uniform_random_parallel(500, 5, 99, 8), g);
        let u = uniform_random_undirected(300, 4, 99);
        assert_eq!(uniform_random_undirected_parallel(300, 4, 99, 8), u);
    }

    #[test]
    fn fused_parallel_uniform_random_matches_sequential_build() {
        // Large enough to clear the `m.div_ceil(8192)` sequential-fallback
        // clamp (unlike the n=500 case above), so the fused closed-form
        // offsets + direct-draw targets path actually runs in parallel.
        let (n, degree, seed) = (20_000usize, 5usize, 0x00C0_FFEE_u64);
        let seq = uniform_random(n, degree, seed);
        for threads in [2, 3, 4, 8] {
            let par = uniform_random_parallel(n, degree, seed, threads);
            assert_eq!(par.offsets(), seq.offsets(), "offsets at {threads} threads");
            assert_eq!(par.targets(), seq.targets(), "targets at {threads} threads");
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(3, 3);
        assert_eq!(g.num_nodes(), 9);
        // Corners 2, edges 3, center 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(4), 4);
        assert!(g.validate());
    }

    #[test]
    fn grid_is_connected() {
        let g = grid2d(7, 5);
        let d = g.bfs_distances(0);
        assert!(d.iter().all(|&x| x != u32::MAX));
        assert_eq!(d[34], 6 + 4); // opposite corner: manhattan distance
    }

    #[test]
    fn parallel_grid_matches_sequential() {
        for (w, h) in [(1usize, 1usize), (1, 40), (40, 1), (63, 65), (100, 100)] {
            let seq = grid2d(w, h);
            for threads in [2, 5, 8] {
                assert_eq!(grid2d_parallel(w, h, threads), seq, "{w}x{h}@{threads}");
            }
        }
    }

    #[test]
    fn rmat_generates_skewed_degrees() {
        let g = rmat(1 << 10, 8 * (1 << 10), 0.57, 0.19, 0.19, 3);
        assert!(g.validate());
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "power-law graph should have hubs (max {max_deg}, avg {avg:.1})"
        );
    }

    #[test]
    fn parallel_rmat_matches_sequential() {
        let seq = rmat(1 << 9, 10_000, 0.57, 0.19, 0.19, 5);
        for threads in [2, 5, 8, 16] {
            let par = rmat_parallel(1 << 9, 10_000, 0.57, 0.19, 0.19, 5, threads);
            assert_eq!(par, seq, "rmat diverged at {threads} threads");
        }
    }
}
