//! Graph serialization: DIMACS and plain edge-list formats.
//!
//! The Lonestar/PBBS suites distribute inputs as files; downstream users of
//! this reproduction need the same. Two formats:
//!
//! - **edge list**: one `src dst` pair per line, `#` comments; node count
//!   inferred.
//! - **DIMACS** (the max-flow community format): `c` comments, one
//!   `p max NODES EDGES` problem line, `n ID s|t` source/sink lines, and
//!   `a SRC DST CAP` arcs, all 1-indexed.

use crate::csr::{CsrGraph, NodeId};
use crate::flow::FlowNetwork;
use std::io::{BufRead, Write};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a line number and description.
    Malformed {
        /// 1-indexed line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error: {e}"),
            ParseGraphError::Malformed { line, reason } => {
                write!(f, "malformed graph at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ParseGraphError {
    ParseGraphError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Reads a `src dst` edge list; `#`-prefixed lines are comments.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure or unparsable lines.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseGraphError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: NodeId = it
            .next()
            .ok_or_else(|| malformed(idx + 1, "missing source"))?
            .parse()
            .map_err(|e| malformed(idx + 1, format!("bad source: {e}")))?;
        let t: NodeId = it
            .next()
            .ok_or_else(|| malformed(idx + 1, "missing target"))?
            .parse()
            .map_err(|e| malformed(idx + 1, format!("bad target: {e}")))?;
        max_node = max_node.max(s).max(t);
        edges.push((s, t));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes `graph` as an edge list.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for v in graph.nodes() {
        for &w in graph.neighbors(v) {
            writeln!(writer, "{v} {w}")?;
        }
    }
    Ok(())
}

/// Reads a DIMACS max-flow file into a [`FlowNetwork`].
///
/// # Errors
///
/// Returns [`ParseGraphError`] for I/O failures, missing problem/source/sink
/// lines, or out-of-range ids.
pub fn read_dimacs_flow<R: BufRead>(reader: R) -> Result<FlowNetwork, ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut source: Option<NodeId> = None;
    let mut sink: Option<NodeId> = None;
    let mut arcs: Vec<(NodeId, NodeId, i64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => {}
            Some("p") => {
                let kind = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing problem kind"))?;
                if kind != "max" {
                    return Err(malformed(idx + 1, format!("unsupported problem '{kind}'")));
                }
                let nodes: usize = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing node count"))?
                    .parse()
                    .map_err(|e| malformed(idx + 1, format!("bad node count: {e}")))?;
                n = Some(nodes);
            }
            Some("n") => {
                let id: u32 = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing node id"))?
                    .parse()
                    .map_err(|e| malformed(idx + 1, format!("bad node id: {e}")))?;
                if id == 0 {
                    return Err(malformed(idx + 1, "DIMACS ids are 1-indexed"));
                }
                match it.next() {
                    Some("s") => source = Some(id - 1),
                    Some("t") => sink = Some(id - 1),
                    other => {
                        return Err(malformed(idx + 1, format!("bad node role {other:?}")));
                    }
                }
            }
            Some("a") => {
                let parse = |tok: Option<&str>, what: &str| -> Result<i64, ParseGraphError> {
                    tok.ok_or_else(|| malformed(idx + 1, format!("missing {what}")))?
                        .parse()
                        .map_err(|e| malformed(idx + 1, format!("bad {what}: {e}")))
                };
                let s = parse(it.next(), "arc source")?;
                let t = parse(it.next(), "arc target")?;
                let cap = parse(it.next(), "arc capacity")?;
                if s < 1 || t < 1 {
                    return Err(malformed(idx + 1, "DIMACS ids are 1-indexed"));
                }
                arcs.push((s as NodeId - 1, t as NodeId - 1, cap));
            }
            Some(other) => {
                return Err(malformed(idx + 1, format!("unknown line kind '{other}'")));
            }
        }
    }
    let n = n.ok_or_else(|| malformed(0, "no problem line"))?;
    let source = source.ok_or_else(|| malformed(0, "no source line"))?;
    let sink = sink.ok_or_else(|| malformed(0, "no sink line"))?;
    Ok(FlowNetwork::from_edges(n, &arcs, source, sink))
}

/// Writes `net` in DIMACS max-flow format (capacities from the network's
/// original construction; residual state is not serialized).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_dimacs_flow<W: Write>(net: &FlowNetwork, mut writer: W) -> std::io::Result<()> {
    // Count real (nonzero-capacity) arcs: reverse residual arcs are an
    // implementation artifact.
    let mut arcs = Vec::new();
    for v in 0..net.num_nodes() as NodeId {
        for e in net.edge_range(v) {
            let cap = net.capacity_of(e);
            if cap > 0 {
                arcs.push((v, net.edge_target(e), cap));
            }
        }
    }
    writeln!(writer, "c generated by deterministic-galois")?;
    writeln!(writer, "p max {} {}", net.num_nodes(), arcs.len())?;
    writeln!(writer, "n {} s", net.source() + 1)?;
    writeln!(writer, "n {} t", net.sink() + 1)?;
    for (s, t, cap) in arcs {
        writeln!(writer, "a {} {} {cap}", s + 1, t + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::uniform_random(64, 3, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# a comment\n\n0 1\n1 2\n\n# trailing\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edge_list_error_reporting() {
        let err = read_edge_list("0 1\nbogus line\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other}"),
        }
    }

    #[test]
    fn dimacs_roundtrip_preserves_max_flow() {
        let net = FlowNetwork::random(40, 3, 25, 9);
        net.reset();
        let expect = net.edmonds_karp();
        let mut buf = Vec::new();
        write_dimacs_flow(&net, &mut buf).unwrap();
        let back = read_dimacs_flow(buf.as_slice()).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.edmonds_karp(), expect);
    }

    #[test]
    fn dimacs_parses_canonical_example() {
        let text = "c example\np max 4 5\nn 1 s\nn 4 t\n\
                    a 1 2 3\na 1 3 2\na 2 4 2\na 3 4 3\na 2 3 5\n";
        let net = read_dimacs_flow(text.as_bytes()).unwrap();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.source(), 0);
        assert_eq!(net.sink(), 3);
        assert_eq!(net.edmonds_karp(), 5);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(
            read_dimacs_flow("p max 2 0\n".as_bytes()).is_err(),
            "no s/t"
        );
        assert!(read_dimacs_flow("q wat\n".as_bytes()).is_err());
        assert!(
            read_dimacs_flow("p max 2 1\nn 1 s\nn 2 t\na 0 1 5\n".as_bytes()).is_err(),
            "0-indexed arc"
        );
    }
}
