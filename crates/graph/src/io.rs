//! Graph serialization: DIMACS, plain edge-list, and binary CSR formats.
//!
//! The Lonestar/PBBS suites distribute inputs as files; downstream users of
//! this reproduction need the same. Three formats:
//!
//! - **edge list**: one `src dst` pair per line, `#` comments; node count
//!   inferred.
//! - **DIMACS** (the max-flow community format): `c` comments, one
//!   `p max NODES EDGES` problem line, `n ID s|t` source/sink lines, and
//!   `a SRC DST CAP` arcs, all 1-indexed.
//! - **binary CSR** (`GCSR`, the [`crate::cache`] format): the raw offset
//!   and target arrays, little-endian, with a magic tag, a format version
//!   and a trailing FNV-1a checksum, so a cached input loads with two
//!   reads and corruption or truncation is always detected.

use crate::csr::{CsrGraph, NodeId};
use crate::flow::FlowNetwork;
use std::io::{BufRead, Read, Write};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a line number and description.
    Malformed {
        /// 1-indexed line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error: {e}"),
            ParseGraphError::Malformed { line, reason } => {
                write!(f, "malformed graph at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ParseGraphError {
    ParseGraphError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Reads a `src dst` edge list; `#`-prefixed lines are comments.
///
/// The node count is inferred as `max id + 1`, unless a header comment of
/// the shape `# N nodes, M edges` (as [`write_edge_list`] emits) declares
/// it — without the header, trailing isolated nodes cannot round-trip.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure, unparsable lines, or a
/// declared node count smaller than an id that then appears.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseGraphError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node = 0u32;
    let mut declared_n: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if let Some(comment) = line.strip_prefix('#') {
            let mut it = comment.split_whitespace();
            if let (Some(count), Some("nodes,")) = (it.next(), it.next()) {
                if let Ok(count) = count.parse::<usize>() {
                    declared_n = Some(count);
                }
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let s: NodeId = it
            .next()
            .ok_or_else(|| malformed(idx + 1, "missing source"))?
            .parse()
            .map_err(|e| malformed(idx + 1, format!("bad source: {e}")))?;
        let t: NodeId = it
            .next()
            .ok_or_else(|| malformed(idx + 1, "missing target"))?
            .parse()
            .map_err(|e| malformed(idx + 1, format!("bad target: {e}")))?;
        max_node = max_node.max(s).max(t);
        edges.push((s, t));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    let n = match declared_n {
        Some(declared) if declared < inferred => {
            return Err(malformed(
                0,
                format!(
                    "header declares {declared} nodes but ids reach {}",
                    inferred - 1
                ),
            ));
        }
        Some(declared) => declared,
        None => inferred,
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes `graph` as an edge list.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for v in graph.nodes() {
        for &w in graph.neighbors(v) {
            writeln!(writer, "{v} {w}")?;
        }
    }
    Ok(())
}

/// Reads a DIMACS max-flow file into a [`FlowNetwork`].
///
/// # Errors
///
/// Returns [`ParseGraphError`] for I/O failures, missing problem/source/sink
/// lines, or out-of-range ids.
pub fn read_dimacs_flow<R: BufRead>(reader: R) -> Result<FlowNetwork, ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut declared_arcs: Option<usize> = None;
    let mut source: Option<NodeId> = None;
    let mut sink: Option<NodeId> = None;
    let mut arcs: Vec<(NodeId, NodeId, i64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => {}
            Some("p") => {
                let kind = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing problem kind"))?;
                if kind != "max" {
                    return Err(malformed(idx + 1, format!("unsupported problem '{kind}'")));
                }
                let nodes: usize = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing node count"))?
                    .parse()
                    .map_err(|e| malformed(idx + 1, format!("bad node count: {e}")))?;
                n = Some(nodes);
                // The arc count is optional in the wild but validated when
                // present: a truncated file (cache entry cut mid-write)
                // must not silently load as a smaller network.
                if let Some(count) = it.next() {
                    let count: usize = count
                        .parse()
                        .map_err(|e| malformed(idx + 1, format!("bad arc count: {e}")))?;
                    declared_arcs = Some(count);
                }
            }
            Some("n") => {
                let id: u32 = it
                    .next()
                    .ok_or_else(|| malformed(idx + 1, "missing node id"))?
                    .parse()
                    .map_err(|e| malformed(idx + 1, format!("bad node id: {e}")))?;
                if id == 0 {
                    return Err(malformed(idx + 1, "DIMACS ids are 1-indexed"));
                }
                match it.next() {
                    Some("s") => source = Some(id - 1),
                    Some("t") => sink = Some(id - 1),
                    other => {
                        return Err(malformed(idx + 1, format!("bad node role {other:?}")));
                    }
                }
            }
            Some("a") => {
                let parse = |tok: Option<&str>, what: &str| -> Result<i64, ParseGraphError> {
                    tok.ok_or_else(|| malformed(idx + 1, format!("missing {what}")))?
                        .parse()
                        .map_err(|e| malformed(idx + 1, format!("bad {what}: {e}")))
                };
                let s = parse(it.next(), "arc source")?;
                let t = parse(it.next(), "arc target")?;
                let cap = parse(it.next(), "arc capacity")?;
                if s < 1 || t < 1 {
                    return Err(malformed(idx + 1, "DIMACS ids are 1-indexed"));
                }
                arcs.push((s as NodeId - 1, t as NodeId - 1, cap));
            }
            Some(other) => {
                return Err(malformed(idx + 1, format!("unknown line kind '{other}'")));
            }
        }
    }
    let n = n.ok_or_else(|| malformed(0, "no problem line"))?;
    let source = source.ok_or_else(|| malformed(0, "no source line"))?;
    let sink = sink.ok_or_else(|| malformed(0, "no sink line"))?;
    if let Some(declared) = declared_arcs {
        if declared != arcs.len() {
            return Err(malformed(
                0,
                format!(
                    "problem line declares {declared} arcs, file has {}",
                    arcs.len()
                ),
            ));
        }
    }
    Ok(FlowNetwork::from_edges(n, &arcs, source, sink))
}

/// Writes `net` in DIMACS max-flow format (capacities from the network's
/// original construction; residual state is not serialized).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_dimacs_flow<W: Write>(net: &FlowNetwork, mut writer: W) -> std::io::Result<()> {
    // Count real (nonzero-capacity) arcs: reverse residual arcs are an
    // implementation artifact.
    let mut arcs = Vec::new();
    for v in 0..net.num_nodes() as NodeId {
        for e in net.edge_range(v) {
            let cap = net.capacity_of(e);
            if cap > 0 {
                arcs.push((v, net.edge_target(e), cap));
            }
        }
    }
    writeln!(writer, "c generated by deterministic-galois")?;
    writeln!(writer, "p max {} {}", net.num_nodes(), arcs.len())?;
    writeln!(writer, "n {} s", net.source() + 1)?;
    writeln!(writer, "n {} t", net.sink() + 1)?;
    for (s, t, cap) in arcs {
        writeln!(writer, "a {} {} {cap}", s + 1, t + 1)?;
    }
    Ok(())
}

/// Magic tag opening every binary CSR file.
pub const CSR_MAGIC: [u8; 4] = *b"GCSR";
/// Current binary CSR format version. Bump on any layout change: the
/// reader rejects every other version, so stale caches regenerate instead
/// of decoding garbage.
pub const CSR_VERSION: u32 = 1;

/// Errors from binary CSR decoding.
#[derive(Debug)]
pub enum BinGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`CSR_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is not [`CSR_VERSION`].
    BadVersion(u32),
    /// The file ended before the declared arrays (or checksum) were read.
    Truncated,
    /// Structurally inconsistent or checksum-mismatched content.
    Corrupt(String),
}

impl std::fmt::Display for BinGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinGraphError::Io(e) => write!(f, "i/o error: {e}"),
            BinGraphError::BadMagic(m) => write!(f, "bad magic {m:02x?}, expected GCSR"),
            BinGraphError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported binary CSR version {v} (expected {CSR_VERSION})"
                )
            }
            BinGraphError::Truncated => write!(f, "truncated binary CSR file"),
            BinGraphError::Corrupt(why) => write!(f, "corrupt binary CSR file: {why}"),
        }
    }
}

impl std::error::Error for BinGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinGraphError {
    fn from(e: std::io::Error) -> Self {
        // An unexpected EOF from read_exact is a truncation, not an I/O
        // fault: the corrupted-cache tests depend on the distinction.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            BinGraphError::Truncated
        } else {
            BinGraphError::Io(e)
        }
    }
}

/// Incremental FNV-1a over 8-byte little-endian words (the checksum the
/// cache format carries). Word-at-a-time instead of the classic per-byte
/// loop: the multiply chain is the serial bottleneck of a warm cache load,
/// and one step per word keeps a 1M-node load well under regeneration
/// cost. A partial trailing word is zero-padded at [`finish`](Self::finish).
/// The internal carry buffer makes the digest independent of how the byte
/// stream is sliced across `write` calls, so reader and writer need not
/// checksum identical segment boundaries.
struct Fnv64 {
    state: u64,
    pending: [u8; 8],
    pending_len: usize,
}

impl Fnv64 {
    fn new() -> Self {
        Fnv64 {
            state: 0xcbf2_9ce4_8422_2325,
            pending: [0u8; 8],
            pending_len: 0,
        }
    }

    #[inline]
    fn step(&mut self, word: u64) {
        self.state ^= word;
        self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let take = bytes.len().min(8 - self.pending_len);
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len == 8 {
                self.step(u64::from_le_bytes(self.pending));
                self.pending_len = 0;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.step(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            self.pending[self.pending_len..].fill(0);
            let word = u64::from_le_bytes(self.pending);
            self.step(word);
        }
        self.state
    }
}

/// Writes `graph` in binary CSR form: magic, version, node/edge counts,
/// the offset and target arrays (little-endian), and a trailing FNV-1a
/// checksum of everything after the magic.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csr_binary<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    let mut sum = Fnv64::new();
    let mut emit = |writer: &mut W, bytes: &[u8]| -> std::io::Result<()> {
        sum.write(bytes);
        writer.write_all(bytes)
    };
    writer.write_all(&CSR_MAGIC)?;
    emit(&mut writer, &CSR_VERSION.to_le_bytes())?;
    emit(&mut writer, &(graph.num_nodes() as u64).to_le_bytes())?;
    emit(&mut writer, &(graph.num_edges() as u64).to_le_bytes())?;
    // Serialize each array into one buffer and emit it whole: a store is
    // two bulk writes, mirroring the two bulk reads of a load.
    let mut offset_bytes = Vec::with_capacity(graph.offsets().len() * 8);
    for &o in graph.offsets() {
        offset_bytes.extend_from_slice(&o.to_le_bytes());
    }
    emit(&mut writer, &offset_bytes)?;
    let mut target_bytes = Vec::with_capacity(graph.targets().len() * 4);
    for &t in graph.targets() {
        target_bytes.extend_from_slice(&t.to_le_bytes());
    }
    emit(&mut writer, &target_bytes)?;
    writer.write_all(&sum.finish().to_le_bytes())?;
    Ok(())
}

/// Reads a binary CSR file written by [`write_csr_binary`].
///
/// # Errors
///
/// [`BinGraphError`] on I/O failure, wrong magic or version, truncation,
/// checksum mismatch, or structurally inconsistent arrays.
pub fn read_csr_binary<R: Read>(mut reader: R) -> Result<CsrGraph, BinGraphError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != CSR_MAGIC {
        return Err(BinGraphError::BadMagic(magic));
    }
    let mut sum = Fnv64::new();
    let mut buf8 = [0u8; 8];
    let mut buf4 = [0u8; 4];

    reader.read_exact(&mut buf4)?;
    sum.write(&buf4);
    let version = u32::from_le_bytes(buf4);
    if version != CSR_VERSION {
        return Err(BinGraphError::BadVersion(version));
    }
    reader.read_exact(&mut buf8)?;
    sum.write(&buf8);
    let n = u64::from_le_bytes(buf8);
    reader.read_exact(&mut buf8)?;
    sum.write(&buf8);
    let m = u64::from_le_bytes(buf8);
    // NodeId is u32, so a sane header is bounded; a garbage count must not
    // drive a giant allocation before the checksum gets a chance to fail.
    if n > u32::MAX as u64 || m > 1 << 40 {
        return Err(BinGraphError::Corrupt(format!(
            "implausible sizes n={n} m={m}"
        )));
    }
    let (n, m) = (n as usize, m as usize);

    // Bulk-read both arrays: cache loads are the point of this format.
    // Sized by what the stream yields (`take` + `read_to_end`), not by an
    // upfront `vec![0; header_len]` — a corrupted length field must fail
    // as `Truncated` when the bytes run out, not abort in the allocator.
    fn read_array<R: Read>(reader: &mut R, len: usize) -> Result<Vec<u8>, BinGraphError> {
        let mut buf = Vec::new();
        let got = reader.take(len as u64).read_to_end(&mut buf)?;
        if got < len {
            return Err(BinGraphError::Truncated);
        }
        Ok(buf)
    }
    let offset_bytes = read_array(&mut reader, (n + 1) * 8)?;
    sum.write(&offset_bytes);
    let offsets: Vec<u64> = offset_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let target_bytes = read_array(&mut reader, m * 4)?;
    sum.write(&target_bytes);
    let targets: Vec<NodeId> = target_bytes
        .chunks_exact(4)
        .map(|c| NodeId::from_le_bytes(c.try_into().unwrap()))
        .collect();
    reader.read_exact(&mut buf8)?;
    if u64::from_le_bytes(buf8) != sum.finish() {
        return Err(BinGraphError::Corrupt("checksum mismatch".into()));
    }
    CsrGraph::from_parts(offsets, targets)
        .ok_or_else(|| BinGraphError::Corrupt("inconsistent CSR arrays".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::uniform_random(64, 3, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let text = "# a comment\n\n0 1\n1 2\n\n# trailing\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edge_list_error_reporting() {
        let err = read_edge_list("0 1\nbogus line\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other}"),
        }
    }

    #[test]
    fn dimacs_roundtrip_preserves_max_flow() {
        let net = FlowNetwork::random(40, 3, 25, 9);
        net.reset();
        let expect = net.edmonds_karp();
        let mut buf = Vec::new();
        write_dimacs_flow(&net, &mut buf).unwrap();
        let back = read_dimacs_flow(buf.as_slice()).unwrap();
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.edmonds_karp(), expect);
    }

    #[test]
    fn dimacs_parses_canonical_example() {
        let text = "c example\np max 4 5\nn 1 s\nn 4 t\n\
                    a 1 2 3\na 1 3 2\na 2 4 2\na 3 4 3\na 2 3 5\n";
        let net = read_dimacs_flow(text.as_bytes()).unwrap();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.source(), 0);
        assert_eq!(net.sink(), 3);
        assert_eq!(net.edmonds_karp(), 5);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(
            read_dimacs_flow("p max 2 0\n".as_bytes()).is_err(),
            "no s/t"
        );
        assert!(read_dimacs_flow("q wat\n".as_bytes()).is_err());
        assert!(
            read_dimacs_flow("p max 2 1\nn 1 s\nn 2 t\na 0 1 5\n".as_bytes()).is_err(),
            "0-indexed arc"
        );
    }
}
