//! Residual flow networks for preflow-push.
//!
//! Preflow-push operates on a residual graph: every directed edge carries a
//! mutable residual capacity, and pushing along an edge increases the
//! capacity of its paired reverse edge. [`FlowNetwork`] stores the topology
//! in CSR form with an explicit reverse-edge index, and the residual
//! capacities in one shared atomic array (mutated only under abstract locks
//! or in the sequential baseline).

use crate::csr::NodeId;
use crate::gen::counter_stream;
use galois_runtime::pool::{chunk_range, run_on_threads};
use galois_runtime::shared::SharedSlice;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicI64, Ordering};

/// Writes node `s`'s `degree` capacitated out-edges from its counter
/// stream: an unbiased distinct-from-self target, then a capacity in
/// `1..=max_cap`.
#[inline]
fn fill_random_node(
    out: &mut [(NodeId, NodeId, i64)],
    n: usize,
    s: NodeId,
    max_cap: i64,
    seed: u64,
) {
    let mut rng = counter_stream(seed, s as u64);
    for slot in out.iter_mut() {
        let mut t = rng.random_range(0..(n - 1) as NodeId);
        if t >= s {
            t += 1;
        }
        *slot = (s, t, rng.random_range(1..=max_cap));
    }
}

/// A directed flow network with paired residual edges.
#[derive(Debug)]
pub struct FlowNetwork {
    offsets: Vec<u64>,
    /// Edge targets.
    targets: Vec<NodeId>,
    /// Index of each edge's reverse edge.
    reverse: Vec<u32>,
    /// Residual capacities (mutable during a max-flow run).
    residual: Vec<AtomicI64>,
    /// Original capacities (for verification and reset).
    capacity: Vec<i64>,
    source: NodeId,
    sink: NodeId,
}

impl FlowNetwork {
    /// Builds a network from capacitated directed edges.
    ///
    /// For every input edge a residual reverse edge of capacity 0 is added.
    /// Parallel edges are allowed (they stay distinct).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, a capacity is negative, or
    /// `source == sink`.
    pub fn from_edges(
        n: usize,
        edges: &[(NodeId, NodeId, i64)],
        source: NodeId,
        sink: NodeId,
    ) -> Self {
        assert!((source as usize) < n && (sink as usize) < n);
        assert_ne!(source, sink, "source and sink must differ");
        // Each input edge becomes a forward/backward pair.
        let mut all: Vec<(NodeId, NodeId, i64, usize)> = Vec::with_capacity(edges.len() * 2);
        for (i, &(s, t, c)) in edges.iter().enumerate() {
            assert!(
                (s as usize) < n && (t as usize) < n,
                "edge {i} out of range"
            );
            assert!(c >= 0, "negative capacity on edge {i}");
            all.push((s, t, c, 2 * i));
            all.push((t, s, 0, 2 * i + 1));
        }
        let m = all.len();
        let mut degree = vec![0u64; n];
        for &(s, ..) in &all {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0u64);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; m];
        let mut capacity = vec![0i64; m];
        // pair_slot[2i] / pair_slot[2i+1] record where each half landed.
        let mut pair_slot = vec![0u32; m];
        for &(s, t, c, pair) in &all {
            let slot = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            targets[slot] = t;
            capacity[slot] = c;
            pair_slot[pair] = slot as u32;
        }
        let mut reverse = vec![0u32; m];
        for i in 0..edges.len() {
            let fwd = pair_slot[2 * i];
            let bwd = pair_slot[2 * i + 1];
            reverse[fwd as usize] = bwd;
            reverse[bwd as usize] = fwd;
        }
        let residual = capacity.iter().map(|&c| AtomicI64::new(c)).collect();
        FlowNetwork {
            offsets,
            targets,
            reverse,
            residual,
            capacity,
            source,
            sink,
        }
    }

    /// The capacitated edge list behind [`random`](Self::random): each node
    /// draws its `degree` (target, capacity) pairs from its own counter
    /// stream (`seed ⊕ node id`, see [`crate::gen::counter_stream`]), with
    /// the unbiased distinct-from-self target draw. Sequential oracle for
    /// [`random_edges_parallel`](Self::random_edges_parallel).
    pub fn random_edges(
        n: usize,
        degree: usize,
        max_cap: i64,
        seed: u64,
    ) -> Vec<(NodeId, NodeId, i64)> {
        assert!(n >= 2);
        let mut edges = vec![(0 as NodeId, 0 as NodeId, 0i64); n * degree];
        for s in 0..n {
            fill_random_node(
                &mut edges[s * degree..(s + 1) * degree],
                n,
                s as NodeId,
                max_cap,
                seed,
            );
        }
        edges
    }

    /// Parallel [`random_edges`](Self::random_edges): nodes fanned over
    /// `threads` threads, byte-identical output for any thread count.
    pub fn random_edges_parallel(
        n: usize,
        degree: usize,
        max_cap: i64,
        seed: u64,
        threads: usize,
    ) -> Vec<(NodeId, NodeId, i64)> {
        assert!(n >= 2);
        let threads = threads.clamp(1, (n * degree).div_ceil(8192).max(1));
        if threads == 1 {
            return Self::random_edges(n, degree, max_cap, seed);
        }
        let mut edges = vec![(0 as NodeId, 0 as NodeId, 0i64); n * degree];
        {
            let shared = SharedSlice::new(&mut edges);
            let shared = &shared;
            run_on_threads(threads, |tid| {
                for s in chunk_range(n, threads, tid) {
                    // SAFETY: node ranges are disjoint across tids, so the
                    // slots [s*degree, (s+1)*degree) are owned by this tid.
                    let row = unsafe { shared.slice_mut(s * degree..(s + 1) * degree) };
                    fill_random_node(row, n, s as NodeId, max_cap, seed);
                }
            });
        }
        edges
    }

    /// The paper's pfp input: a random graph of `n` nodes with `degree`
    /// random neighbors each, random capacities in `1..=max_cap`, node 0 as
    /// source and node `n-1` as sink (§4.2, scaled).
    pub fn random(n: usize, degree: usize, max_cap: i64, seed: u64) -> Self {
        let edges = Self::random_edges(n, degree, max_cap, seed);
        Self::from_edges(n, &edges, 0, (n - 1) as NodeId)
    }

    /// [`random`](Self::random) with parallel edge generation. The network
    /// itself is identical for any thread count (the residual-graph build
    /// is shared with the sequential path).
    pub fn random_parallel(
        n: usize,
        degree: usize,
        max_cap: i64,
        seed: u64,
        threads: usize,
    ) -> Self {
        let edges = Self::random_edges_parallel(n, degree, max_cap, seed, threads);
        Self::from_edges(n, &edges, 0, (n - 1) as NodeId)
    }

    /// A layered RMF network (Goldberg's washington-RMF family, the
    /// standard hard instance class for push-relabel): `frames` square
    /// grids of side `a`, unit-ish capacities inside a frame, random
    /// capacities between consecutive frames; source in the first frame,
    /// sink in the last. Scaled-down random k-out graphs have tiny diameter
    /// and starve preflow-push of work; RMF keeps the per-node discharge
    /// density of the paper's full-size input (see DESIGN.md).
    pub fn rmf(a: usize, frames: usize, max_cap: i64, seed: u64) -> Self {
        assert!(a >= 2 && frames >= 2);
        let per = a * a;
        let n = per * frames;
        let id = |f: usize, x: usize, y: usize| (f * per + y * a + x) as NodeId;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId, i64)> = Vec::new();
        let in_frame_cap = max_cap * (a as i64) * (a as i64);
        for f in 0..frames {
            for y in 0..a {
                for x in 0..a {
                    // 4-neighbor connections within the frame, both ways.
                    if x + 1 < a {
                        edges.push((id(f, x, y), id(f, x + 1, y), in_frame_cap));
                        edges.push((id(f, x + 1, y), id(f, x, y), in_frame_cap));
                    }
                    if y + 1 < a {
                        edges.push((id(f, x, y), id(f, x, y + 1), in_frame_cap));
                        edges.push((id(f, x, y + 1), id(f, x, y), in_frame_cap));
                    }
                    // One random connection to the next frame.
                    if f + 1 < frames {
                        let tx = rng.random_range(0..a);
                        let ty = rng.random_range(0..a);
                        edges.push((
                            id(f, x, y),
                            id(f + 1, tx, ty),
                            rng.random_range(1..=max_cap),
                        ));
                    }
                }
            }
        }
        Self::from_edges(n, &edges, id(0, 0, 0), id(frames - 1, a - 1, a - 1))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of residual edges (2× the input edges).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Range of edge indices leaving `v`.
    pub fn edge_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Target of edge `e`.
    pub fn edge_target(&self, e: usize) -> NodeId {
        self.targets[e]
    }

    /// Index of the reverse of edge `e`.
    pub fn reverse_edge(&self, e: usize) -> usize {
        self.reverse[e] as usize
    }

    /// Original capacity of edge `e` (zero for generated reverse edges).
    pub fn capacity_of(&self, e: usize) -> i64 {
        self.capacity[e]
    }

    /// Residual capacity of edge `e` (relaxed read).
    #[inline]
    pub fn residual(&self, e: usize) -> i64 {
        self.residual[e].load(Ordering::Relaxed)
    }

    /// Pushes `delta` units along edge `e` (caller holds abstract locks on
    /// both endpoints, or runs sequentially).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the push exceeds the residual capacity.
    #[inline]
    pub fn push_flow(&self, e: usize, delta: i64) {
        debug_assert!(delta > 0 && delta <= self.residual(e));
        let r = self.reverse[e] as usize;
        self.residual[e].fetch_sub(delta, Ordering::Relaxed);
        self.residual[r].fetch_add(delta, Ordering::Relaxed);
    }

    /// Net flow currently assigned to edge `e` (capacity − residual).
    pub fn flow_on(&self, e: usize) -> i64 {
        self.capacity[e] - self.residual(e)
    }

    /// Resets all residual capacities to the original capacities.
    pub fn reset(&self) {
        for (slot, &c) in self.residual.iter().zip(self.capacity.iter()) {
            slot.store(c, Ordering::Relaxed);
        }
    }

    /// Total net flow out of the source.
    pub fn source_outflow(&self) -> i64 {
        self.edge_range(self.source).map(|e| self.flow_on(e)).sum()
    }

    /// Verifies flow conservation and capacity constraints; returns the flow
    /// value if valid.
    pub fn verify_flow(&self) -> Result<i64, String> {
        let n = self.num_nodes();
        let mut net = vec![0i64; n];
        for v in 0..n as NodeId {
            for e in self.edge_range(v) {
                let f = self.flow_on(e);
                if self.residual(e) < 0 {
                    return Err(format!("negative residual on edge {e}"));
                }
                // A pushed unit appears as +f on the forward edge and -f on
                // its reverse; counting only the positive side counts each
                // unit of flow once.
                if f > 0 {
                    net[v as usize] -= f;
                    net[self.targets[e] as usize] += f;
                }
            }
        }
        for (v, &balance) in net.iter().enumerate() {
            if v != self.source as usize && v != self.sink as usize && balance != 0 {
                return Err(format!("conservation violated at node {v}: net {balance}"));
            }
        }
        if net[self.source as usize] != -net[self.sink as usize] {
            return Err("source/sink imbalance".into());
        }
        Ok(net[self.sink as usize])
    }

    /// Max-flow by Edmonds–Karp (reference for verification; O(V·E²)).
    ///
    /// Runs on the *current* residual state; call [`reset`](Self::reset)
    /// first for a from-scratch computation.
    pub fn edmonds_karp(&self) -> i64 {
        let n = self.num_nodes();
        let mut total = 0i64;
        loop {
            // BFS for an augmenting path in the residual graph.
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(self.source);
            pred[self.source as usize] = Some(usize::MAX);
            while let Some(v) = queue.pop_front() {
                for e in self.edge_range(v) {
                    let t = self.targets[e] as usize;
                    if pred[t].is_none() && self.residual(e) > 0 {
                        pred[t] = Some(e);
                        queue.push_back(t as NodeId);
                    }
                }
            }
            let Some(_) = pred[self.sink as usize] else {
                break;
            };
            // Find the bottleneck.
            let mut bottleneck = i64::MAX;
            let mut v = self.sink as usize;
            while v != self.source as usize {
                let e = pred[v].unwrap();
                bottleneck = bottleneck.min(self.residual(e));
                v = self.source_of(e);
            }
            // Augment.
            let mut v = self.sink as usize;
            while v != self.source as usize {
                let e = pred[v].unwrap();
                self.push_flow(e, bottleneck);
                v = self.source_of(e);
            }
            total += bottleneck;
        }
        total
    }

    fn source_of(&self, e: usize) -> usize {
        // Largest v with offsets[v] <= e; duplicates from empty adjacency
        // lists are skipped by taking the partition point.
        self.offsets.partition_point(|&o| o <= e as u64) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FlowNetwork {
        // 0 -> {1,2} -> 3, classic diamond with bottleneck 3+2.
        FlowNetwork::from_edges(
            4,
            &[(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 5)],
            0,
            3,
        )
    }

    #[test]
    fn reverse_edges_pair_up() {
        let net = diamond();
        for e in 0..net.num_edges() {
            let r = net.reverse_edge(e);
            assert_eq!(net.reverse_edge(r), e);
            assert_ne!(r, e);
        }
    }

    #[test]
    fn edmonds_karp_on_diamond() {
        let net = diamond();
        let flow = net.edmonds_karp();
        // 0→1→3 (2) + 0→2→3 (2) + 0→1→2→3 (1): min cut at the sink is 5.
        assert_eq!(flow, 5);
        assert_eq!(net.verify_flow().unwrap(), 5);
        assert_eq!(net.source_outflow(), 5);
    }

    #[test]
    fn push_flow_updates_residual_pair() {
        let net = diamond();
        let e = net.edge_range(0).next().unwrap();
        let before = net.residual(e);
        net.push_flow(e, 1);
        assert_eq!(net.residual(e), before - 1);
        assert_eq!(net.residual(net.reverse_edge(e)), 1);
        assert_eq!(net.flow_on(e), 1);
    }

    #[test]
    fn reset_restores_capacities() {
        let net = diamond();
        net.edmonds_karp();
        net.reset();
        assert_eq!(net.verify_flow().unwrap(), 0);
        assert_eq!(net.edmonds_karp(), 5);
    }

    #[test]
    fn random_network_flow_is_verified() {
        let net = FlowNetwork::random(64, 4, 100, 11);
        let flow = net.edmonds_karp();
        assert!(flow > 0, "random 4-out network should have s-t flow");
        assert_eq!(net.verify_flow().unwrap(), flow);
    }

    #[test]
    fn random_is_deterministic() {
        let a = FlowNetwork::random(32, 3, 50, 5);
        let b = FlowNetwork::random(32, 3, 50, 5);
        assert_eq!(a.edmonds_karp(), b.edmonds_karp());
    }

    #[test]
    fn parallel_random_edges_are_thread_count_invariant() {
        let seq = FlowNetwork::random_edges(300, 4, 75, 17);
        for threads in [1, 2, 5, 8, 16] {
            assert_eq!(
                FlowNetwork::random_edges_parallel(300, 4, 75, 17, threads),
                seq,
                "flow edges diverged at {threads} threads"
            );
        }
        // The built networks agree on everything observable.
        let a = FlowNetwork::random(300, 4, 75, 17);
        let b = FlowNetwork::random_parallel(300, 4, 75, 17, 8);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edmonds_karp(), b.edmonds_karp());
    }

    #[test]
    fn random_has_no_self_loops_and_exact_degree() {
        let edges = FlowNetwork::random_edges(64, 4, 10, 3);
        assert_eq!(edges.len(), 64 * 4);
        for &(s, t, c) in &edges {
            assert_ne!(s, t);
            assert!((1..=10).contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let _ = FlowNetwork::from_edges(2, &[(0, 1, 1)], 0, 0);
    }

    #[test]
    fn rmf_network_is_consistent_and_has_flow() {
        let net = FlowNetwork::rmf(4, 5, 20, 7);
        assert_eq!(net.num_nodes(), 4 * 4 * 5);
        let flow = net.edmonds_karp();
        assert!(flow > 0);
        assert_eq!(net.verify_flow().unwrap(), flow);
        // Min cut is between frames: at most per-frame nodes * max_cap.
        assert!(flow <= 16 * 20);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let net = FlowNetwork::from_edges(3, &[(0, 1, 5)], 0, 2);
        assert_eq!(net.edmonds_karp(), 0);
    }
}
