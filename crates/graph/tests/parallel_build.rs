//! Byte-identity of the parallel input pipeline.
//!
//! The parallel CSR builder and the parallel generators promise more than
//! "isomorphic output": the produced graph must be **byte-identical** to
//! the sequential oracle's — same offsets, same target order, same
//! serialized bytes — for *every* thread count. These tests sweep the
//! thread counts the repo's determinism suite uses (including ones larger
//! than any plausible core count and ones that do not divide the input
//! size) and drive the builder through property-drawn edge lists plus the
//! adversarial shapes a chunked counting sort gets wrong first: empty
//! inputs, single nodes, duplicate edges, and one node holding every edge.

use galois_graph::io::write_csr_binary;
use galois_graph::{gen, CsrGraph};
use proptest::prelude::*;

/// Thread counts every parallel path must be invariant over (the same
/// sweep as `tests/common::THREAD_COUNTS` at the workspace level).
const THREAD_COUNTS: [usize; 5] = [1, 2, 5, 8, 16];

/// The full identity check: structural equality *and* serialized bytes.
fn assert_bit_identical(label: &str, oracle: &CsrGraph, parallel: &CsrGraph, threads: usize) {
    assert_eq!(
        oracle.offsets(),
        parallel.offsets(),
        "{label}: offsets diverge at {threads} threads"
    );
    assert_eq!(
        oracle.targets(),
        parallel.targets(),
        "{label}: targets diverge at {threads} threads"
    );
    let mut a = Vec::new();
    let mut b = Vec::new();
    write_csr_binary(oracle, &mut a).unwrap();
    write_csr_binary(parallel, &mut b).unwrap();
    assert_eq!(
        a, b,
        "{label}: serialized bytes diverge at {threads} threads"
    );
}

fn sweep(label: &str, n: usize, edges: &[(u32, u32)]) {
    let oracle = CsrGraph::from_edges(n, edges);
    assert!(oracle.validate(), "{label}: oracle CSR invalid");
    for t in THREAD_COUNTS {
        let par = CsrGraph::from_edges_parallel(n, edges, t);
        assert_bit_identical(label, &oracle, &par, t);
    }
}

#[test]
fn empty_graph() {
    sweep("empty", 0, &[]);
}

#[test]
fn nodes_without_edges() {
    sweep("edgeless", 17, &[]);
}

#[test]
fn singleton_with_self_loop() {
    sweep("singleton", 1, &[(0, 0)]);
}

#[test]
fn duplicate_edges_are_all_kept_in_order() {
    let edges = vec![(0, 1), (0, 1), (0, 1), (2, 0), (2, 0), (1, 2)];
    sweep("duplicates", 3, &edges);
    let g = CsrGraph::from_edges_parallel(3, &edges, 5);
    assert_eq!(
        g.neighbors(0),
        &[1, 1, 1],
        "duplicates collapsed or reordered"
    );
}

#[test]
fn max_degree_star_onto_one_node() {
    // Every edge lands on node 0: one histogram bucket absorbs the whole
    // edge list, the worst case for per-chunk cursor stitching.
    let n = 64;
    let edges: Vec<(u32, u32)> = (0..4_096).map(|i| (0, (i % n) as u32)).collect();
    sweep("star-out", n as usize, &edges);
    let from_all: Vec<(u32, u32)> = (0..4_096).map(|i| ((i % n) as u32, 0)).collect();
    sweep("star-in", n as usize, &from_all);
}

#[test]
fn chunk_boundary_sizes() {
    // Edge counts straddling the builder's parallelization threshold, with
    // node counts that do not divide evenly among any swept thread count.
    for m in [8_191usize, 8_192, 8_193, 20_000] {
        let n = 37;
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|i| ((i % n) as u32, ((i * 7 + 3) % n) as u32))
            .collect();
        sweep("boundary", n, &edges);
    }
}

#[test]
fn symmetrized_parallel_matches_sequential() {
    let edges = gen::uniform_random_edges(500, 3, 77);
    let oracle = CsrGraph::symmetrized(500, &edges);
    for t in THREAD_COUNTS {
        let par = CsrGraph::symmetrized_parallel(500, &edges, t);
        assert_bit_identical("symmetrized", &oracle, &par, t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary edge lists (self-loops and duplicates included) build
    /// bit-identically at every thread count.
    fn arbitrary_edge_lists_build_identically(
        n in 1usize..48,
        raw in proptest::collection::vec((0u32..10_000, 0u32..10_000), 0..600),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(s, t)| (s % n as u32, t % n as u32))
            .collect();
        let oracle = CsrGraph::from_edges(n, &edges);
        prop_assert!(oracle.validate());
        for t in THREAD_COUNTS {
            let par = CsrGraph::from_edges_parallel(n, &edges, t);
            prop_assert_eq!(oracle.offsets(), par.offsets(), "offsets, {} threads", t);
            prop_assert_eq!(oracle.targets(), par.targets(), "targets, {} threads", t);
        }
    }

    /// The uniform generator is a pure function of (n, degree, seed): the
    /// parallel build is byte-identical to the sequential one.
    fn uniform_generator_is_thread_count_invariant(
        n in 1usize..300,
        degree in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let oracle = gen::uniform_random(n, degree, seed);
        for t in THREAD_COUNTS {
            let par = gen::uniform_random_parallel(n, degree, seed, t);
            prop_assert_eq!(&oracle, &par, "uniform(n={}, d={}, s={}) at {} threads", n, degree, seed, t);
        }
    }

    /// Same for the undirected (symmetrized) family.
    fn undirected_generator_is_thread_count_invariant(
        n in 1usize..200,
        seed in 0u64..500,
    ) {
        let oracle = gen::uniform_random_undirected(n, 3, seed);
        for t in THREAD_COUNTS {
            let par = gen::uniform_random_undirected_parallel(n, 3, seed, t);
            prop_assert_eq!(&oracle, &par, "undirected(n={}, s={}) at {} threads", n, seed, t);
        }
    }

    /// Grid shapes, including degenerate 1-wide and 1-tall strips.
    fn grid_generator_is_thread_count_invariant(
        w in 1usize..24,
        h in 1usize..24,
    ) {
        let oracle = gen::grid2d(w, h);
        for t in THREAD_COUNTS {
            let par = gen::grid2d_parallel(w, h, t);
            prop_assert_eq!(&oracle, &par, "grid2d({}x{}) at {} threads", w, h, t);
        }
    }

    /// RMAT: per-edge streams plus the deterministic pack must reproduce
    /// the sequential edge order exactly.
    fn rmat_generator_is_thread_count_invariant(
        n_log2 in 3u32..9,
        m in 0usize..2_000,
        seed in 0u64..100,
    ) {
        let n = 1usize << n_log2;
        let oracle = gen::rmat(n, m, 0.57, 0.19, 0.19, seed);
        for t in THREAD_COUNTS {
            let par = gen::rmat_parallel(n, m, 0.57, 0.19, 0.19, seed, t);
            prop_assert_eq!(&oracle, &par, "rmat(n={}, m={}, s={}) at {} threads", n, m, seed, t);
        }
    }
}
