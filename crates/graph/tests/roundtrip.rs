//! Round-trip and rejection tests for the graph I/O formats.
//!
//! The on-disk cache trusts `read_csr_binary` to be the *only* gate
//! between a cache file and a benchmark input, so the binary format is
//! tested the way an adversarial filesystem would exercise it: bit flips
//! in every region, truncation at every boundary, wrong magic, wrong
//! version. The text formats (edge list, DIMACS) are round-tripped twice —
//! read → write → read — to pin down that writing is a faithful inverse,
//! not merely that one pass happens to parse.

use galois_graph::gen;
use galois_graph::io::{
    read_csr_binary, read_dimacs_flow, read_edge_list, write_csr_binary, write_dimacs_flow,
    write_edge_list, BinGraphError, CSR_MAGIC, CSR_VERSION,
};
use galois_graph::{CsrGraph, FlowNetwork};

fn encode(g: &CsrGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csr_binary(g, &mut buf).unwrap();
    buf
}

#[test]
fn binary_roundtrip_is_byte_stable() {
    for (n, d, seed) in [(1usize, 0usize, 0u64), (64, 3, 5), (500, 5, 99)] {
        let g = gen::uniform_random(n, d, seed);
        let bytes = encode(&g);
        let back = read_csr_binary(bytes.as_slice()).unwrap();
        assert_eq!(g, back);
        // Re-encoding the decoded graph reproduces the same bytes: the
        // format has one canonical encoding per graph.
        assert_eq!(bytes, encode(&back));
    }
}

#[test]
fn binary_roundtrip_of_empty_graph() {
    let g = CsrGraph::from_edges(0, &[]);
    let back = read_csr_binary(encode(&g).as_slice()).unwrap();
    assert_eq!(g, back);
    assert_eq!(back.num_nodes(), 0);
    assert_eq!(back.num_edges(), 0);
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = encode(&gen::uniform_random(16, 2, 1));
    bytes[0..4].copy_from_slice(b"NOPE");
    match read_csr_binary(bytes.as_slice()) {
        Err(BinGraphError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = encode(&gen::uniform_random(16, 2, 1));
    bytes[4..8].copy_from_slice(&(CSR_VERSION + 1).to_le_bytes());
    match read_csr_binary(bytes.as_slice()) {
        Err(BinGraphError::BadVersion(v)) => assert_eq!(v, CSR_VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    let bytes = encode(&gen::uniform_random(16, 2, 1));
    // Cutting inside the magic, the header, either array, or the trailing
    // checksum must all fail — never decode a graph from a short file.
    for cut in [0, 2, 4, 6, 11, 19, 20, bytes.len() / 2, bytes.len() - 1] {
        let short = &bytes[..cut];
        match read_csr_binary(short) {
            Err(BinGraphError::Truncated) => {}
            Err(BinGraphError::BadMagic(_)) if cut < 4 => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    // Exhaustive bit-rot sweep: flipping any one byte anywhere in the file
    // must surface as *some* decode error (checksum mismatch at minimum),
    // never as a silently different graph.
    let g = gen::uniform_random(24, 2, 7);
    let bytes = encode(&g);
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x41;
        match read_csr_binary(bad.as_slice()) {
            Err(_) => {}
            Ok(decoded) => panic!(
                "flip at byte {i}/{} decoded silently (graphs equal: {})",
                bytes.len(),
                decoded == g
            ),
        }
    }
}

#[test]
fn implausible_header_sizes_fail_before_allocating() {
    // A garbage node count must be rejected up front, not passed to
    // `Vec::with_capacity` (the checksum would catch it *after* the OOM).
    let mut bytes = encode(&gen::uniform_random(8, 1, 3));
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    match read_csr_binary(bytes.as_slice()) {
        Err(BinGraphError::Corrupt(why)) => assert!(why.contains("implausible")),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_harmless_but_reader_stops_at_checksum() {
    // The cache reads files it wrote itself; appended bytes (e.g. a torn
    // concurrent write into a pre-existing file) must not corrupt decode.
    let g = gen::uniform_random(16, 2, 1);
    let mut bytes = encode(&g);
    bytes.extend_from_slice(b"junk after the checksum");
    let back = read_csr_binary(bytes.as_slice()).unwrap();
    assert_eq!(g, back);
}

#[test]
fn magic_and_version_constants_are_pinned() {
    // The format constants are an on-disk contract; changing them silently
    // would orphan every existing cache file.
    assert_eq!(&CSR_MAGIC, b"GCSR");
    assert_eq!(CSR_VERSION, 1);
    let bytes = encode(&CsrGraph::from_edges(0, &[]));
    assert_eq!(&bytes[0..4], b"GCSR");
}

#[test]
fn edge_list_double_roundtrip() {
    let g = gen::rmat(128, 700, 0.57, 0.19, 0.19, 11);
    let mut first = Vec::new();
    write_edge_list(&g, &mut first).unwrap();
    let once = read_edge_list(first.as_slice()).unwrap();
    let mut second = Vec::new();
    write_edge_list(&once, &mut second).unwrap();
    let twice = read_edge_list(second.as_slice()).unwrap();
    assert_eq!(g, once);
    assert_eq!(once, twice);
    assert_eq!(first, second, "edge-list writer is not canonical");
}

#[test]
fn dimacs_double_roundtrip_preserves_structure_and_flow() {
    let net = FlowNetwork::random(64, 3, 50, 21);
    let mut first = Vec::new();
    write_dimacs_flow(&net, &mut first).unwrap();
    let once = read_dimacs_flow(first.as_slice()).unwrap();
    let mut second = Vec::new();
    write_dimacs_flow(&once, &mut second).unwrap();
    assert_eq!(first, second, "DIMACS writer is not canonical");
    assert_eq!(once.num_nodes(), net.num_nodes());
    assert_eq!(once.num_edges(), net.num_edges());
    net.reset();
    assert_eq!(once.edmonds_karp(), net.edmonds_karp());
}

#[test]
fn dimacs_rejects_truncated_input() {
    let net = FlowNetwork::random(32, 3, 30, 2);
    let mut buf = Vec::new();
    write_dimacs_flow(&net, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // Drop the last arc line: the arc count no longer matches the header.
    let cut = text.trim_end().rfind('\n').unwrap();
    assert!(
        read_dimacs_flow(&text.as_bytes()[..cut]).is_err(),
        "truncated DIMACS (missing arcs) must not parse"
    );
}
