//! Edge-case and cross-variant agreement tests for the applications.

use galois_apps::{bfs, dmr, dt, mis, pfp};
use galois_core::{Executor, Schedule, WorklistPolicy};
use galois_geometry::Point;
use galois_graph::{gen, CsrGraph, FlowNetwork};
use galois_mesh::check;

fn all_schedules() -> Vec<(&'static str, Executor)> {
    vec![
        ("serial", Executor::new().schedule(Schedule::Serial)),
        (
            "spec",
            Executor::new()
                .threads(3)
                .schedule(Schedule::Speculative)
                .worklist(WorklistPolicy::Fifo),
        ),
        (
            "det",
            Executor::new()
                .threads(3)
                .schedule(Schedule::deterministic()),
        ),
    ]
}

#[test]
fn bfs_on_grid_all_schedules() {
    let g = gen::grid2d(25, 17);
    let expect = g.bfs_distances(0);
    for (name, exec) in all_schedules() {
        let (dist, _) = bfs::galois(&g, 0, &exec);
        assert_eq!(dist, expect, "{name}");
    }
}

#[test]
fn bfs_single_node_and_self_contained_source() {
    let g = CsrGraph::from_edges(1, &[]);
    for (name, exec) in all_schedules() {
        let (dist, report) = bfs::galois(&g, 0, &exec);
        assert_eq!(dist, vec![0], "{name}");
        assert_eq!(report.stats.committed, 1, "{name}: just the source task");
    }
}

#[test]
fn bfs_star_graph_depth_one() {
    // Hub 0 connected to everything: one round of depth 1.
    let edges: Vec<(u32, u32)> = (1..100).map(|i| (0, i)).collect();
    let g = CsrGraph::from_edges(100, &edges);
    let (dist, _, stats) = bfs::pbbs(&g, 0, 2, false);
    assert!(dist[1..].iter().all(|&d| d == 1));
    // One productive round plus the final empty-frontier round.
    assert_eq!(stats.rounds, 2);
}

#[test]
fn mis_on_complete_graph_is_singleton() {
    let n = 24u32;
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    let g = CsrGraph::symmetrized(n as usize, &edges);
    for (name, exec) in all_schedules() {
        let (flags, _) = mis::galois(&g, &exec);
        mis::verify(&g, &flags).unwrap();
        let in_count = flags.iter().filter(|&&f| f == mis::state::IN).count();
        assert_eq!(in_count, 1, "{name}: complete graph has singleton MIS");
    }
    let (flags, _) = mis::pbbs(&g, 2, false);
    assert_eq!(flags[0], mis::state::IN, "lexicographic MIS picks node 0");
}

#[test]
fn mis_on_edgeless_graph_takes_everything() {
    let g = CsrGraph::from_edges(50, &[]);
    let (flags, _) = mis::pbbs(&g, 3, false);
    assert!(flags.iter().all(|&f| f == mis::state::IN));
}

#[test]
fn dt_collinear_points() {
    // All points on one horizontal line: triangulation works because the
    // domain corners break the degeneracy.
    let pts: Vec<Point> = (1..40)
        .map(|i| Point::from_grid(i * 1_000_000, 1 << 25))
        .collect();
    let mesh = dt::seq(&pts, 1);
    check::validate(&mesh).unwrap();
    check::check_delaunay(&mesh).unwrap();
    let expect = check::canonical_triangles(&mesh);
    for (name, exec) in all_schedules() {
        let (m, _) = dt::galois(&pts, 1, &exec);
        assert_eq!(check::canonical_triangles(&m), expect, "{name}");
    }
}

#[test]
fn dt_points_on_domain_boundary() {
    // Points exactly on the square's sides exercise the hull-split paths.
    let g = 1i64 << 26;
    let pts = vec![
        Point::from_grid(g / 2, 0),
        Point::from_grid(0, g / 3),
        Point::from_grid(g, g / 2),
        Point::from_grid(g / 4, g),
        Point::from_grid(g / 2, g / 2),
    ];
    let mesh = dt::seq(&pts, 2);
    check::validate(&mesh).unwrap();
    check::check_delaunay(&mesh).unwrap();
    check::check_contains_vertices(&mesh, 4 + pts.len()).unwrap();
}

#[test]
fn dt_duplicate_heavy_input() {
    // Many duplicates: committed tasks still equals the task count (dups
    // commit as no-ops), and the mesh has only the distinct points.
    let p = Point::from_grid(5_000_000, 7_000_000);
    let q = Point::from_grid(9_000_000, 2_000_000);
    let pts = vec![p, q, p, q, p, q, p];
    for (name, exec) in all_schedules() {
        let (mesh, report) = dt::galois(&pts, 3, &exec);
        assert_eq!(report.stats.committed, 7, "{name}");
        assert_eq!(mesh.num_verts(), 4 + 2, "{name}: two distinct points");
        check::validate(&mesh).unwrap();
    }
}

#[test]
fn dmr_refines_boundary_heavy_mesh() {
    // Clustered points near one corner force encroached-boundary splits.
    let pts: Vec<Point> = (0..60)
        .map(|i| Point::from_grid(1_000 + i * 37, 2_000 + (i * i) % 977))
        .collect();
    let mut b = galois_mesh::build::SeqBuilder::with_headroom(pts.len(), 40_000, 400_000);
    for &p in &pts {
        b.insert(p);
    }
    let mesh = b.into_mesh();
    let exec = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic());
    dmr::galois(&mesh, &exec);
    check::validate(&mesh).unwrap();
    check::check_delaunay(&mesh).unwrap();
    assert_eq!(check::quality(&mesh).bad, 0);
}

#[test]
fn pfp_rmf_all_schedules_agree() {
    let net = FlowNetwork::rmf(4, 4, 25, 3);
    net.reset();
    let expect = net.edmonds_karp();
    assert!(expect > 0);
    for (name, exec) in all_schedules() {
        let (flow, _) = pfp::galois(&net, &exec);
        assert_eq!(flow, expect, "{name}");
        net.verify_flow().unwrap();
    }
    let (flow, _) = pfp::seq(&net);
    assert_eq!(flow, expect);
}

#[test]
fn pfp_saturated_single_path() {
    // A path network: flow = min capacity along the path.
    let net = FlowNetwork::from_edges(5, &[(0, 1, 9), (1, 2, 3), (2, 3, 7), (3, 4, 5)], 0, 4);
    let (flow, _) = pfp::seq(&net);
    assert_eq!(flow, 3);
    let exec = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic());
    let (flow, _) = pfp::galois(&net, &exec);
    assert_eq!(flow, 3);
}
