//! Delaunay mesh refinement (§4.1).
//!
//! Input: the Delaunay mesh of random points in the unit square plus the
//! four square corners (built sequentially, like the paper's offline input).
//! A task takes a *bad* triangle (smallest angle < 30°), inserts its
//! circumcenter — or, when the circumcenter falls outside the mesh, a point
//! splitting the crossed hull edge — by Bowyer–Watson cavity
//! retriangulation, and creates tasks for any new bad triangles. Tiny
//! triangles are never refined ([`galois_geometry::tri::MIN_REFINE_EDGE2`]),
//! guaranteeing termination at finite precision.
//!
//! All variants keep the mesh Delaunay; output equality across thread
//! counts is checked on the canonical geometric form.

use galois_core::{
    Abort, Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, RunReport,
};
use galois_geometry::predicates::orient2d_sign;
use galois_geometry::tri::{circumcenter, is_bad};
use galois_geometry::Point;
use galois_mesh::build::SeqBuilder;
use galois_mesh::cavity::{grow, locate, retriangulate, Cavity, LocateOutcome};
use galois_mesh::{check, Mesh, INVALID};
use galois_runtime::pool::{chunk_range, run_on_threads};
use std::convert::Infallible;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Builds the dmr input: `n` random interior points plus the four unit
/// square corners, triangulated sequentially, with arena headroom for
/// refinement.
pub fn make_input(n: usize, seed: u64) -> Mesh {
    let pts = galois_geometry::point::random_points(n, seed);
    // Headroom for in-place refinement. Refining to a 30° minimum angle on
    // random inputs is aggressive (30° is past Ruppert's guarantee); the
    // observed growth factor is ~16x vertices at n=2000 and falls with n.
    // The affine bound below covers small inputs, where grading between a
    // sparse point set and the fixed square boundary dominates.
    let mut b = SeqBuilder::with_headroom(
        pts.len(),
        30 * pts.len() + 60_000,
        250 * pts.len() + 500_000,
    );
    for &p in &pts {
        b.insert(p);
    }
    b.into_mesh()
}

/// Picks the insertion point for refining bad triangle `t`: the
/// circumcenter, or a hull-edge split point when the center lies outside
/// the mesh.
///
/// Returns `(seed_triangle, point)` or `None` when the triangle should be
/// skipped (degenerate circumcenter or an unsplittable edge). `visit` is
/// called on every triangle read.
fn insertion_point<E>(
    mesh: &Mesh,
    t: u32,
    visit: &mut impl FnMut(u32) -> Result<(), E>,
) -> Result<Option<(u32, Point)>, E> {
    let [a, b, c] = mesh.tri_points(t);
    let Some(cc) = circumcenter(a, b, c) else {
        return Ok(None);
    };
    match locate(mesh, cc, t, visit)? {
        LocateOutcome::Found(seed) => Ok(Some((seed, cc))),
        LocateOutcome::OnVertex { .. } => Ok(None),
        LocateOutcome::OutsideBoundary { tri, edge } => {
            // Split the crossed hull segment at its midpoint (Ruppert-style
            // segment split). The dmr domain's hull edges are axis-aligned
            // (square corners plus interior points), so the floored midpoint
            // lies *exactly* on the segment — the retriangulation's
            // degenerate-edge path then splits the hull cleanly, with no
            // sliver triangles.
            let d = mesh.tri(tri);
            let pa = mesh.vertex(d.v[edge]);
            let pb = mesh.vertex(d.v[(edge + 1) % 3]);
            let (ax, ay) = pa.to_grid();
            let (bx, by) = pb.to_grid();
            let p = Point::from_grid((ax + bx).div_euclid(2), (ay + by).div_euclid(2));
            if p == pa || p == pb {
                return Ok(None); // segment too short to split
            }
            debug_assert_eq!(orient2d_sign(pa, pb, p), 0, "hull edges are axis-aligned");
            match locate(mesh, p, tri, visit)? {
                LocateOutcome::Found(seed) => Ok(Some((seed, p))),
                _ => Ok(None),
            }
        }
    }
}

/// The shared Galois operator for dmr, run under `exec`'s schedule.
///
/// Refines `mesh` in place and returns the run report.
pub fn galois(mesh: &Mesh, exec: &Executor) -> RunReport {
    try_galois(mesh, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows come back as [`ExecError`] instead of unwinding.
pub fn try_galois(mesh: &Mesh, exec: &Executor) -> Result<RunReport, ExecError> {
    galois_impl(mesh, exec, None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`], capturing (or replay-verifying) the
/// run's canonical hash chain for record/replay.
pub fn try_galois_recorded(
    mesh: &Mesh,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<RunReport, ExecError> {
    galois_impl(mesh, exec, Some(recorder))
}

fn galois_impl(
    mesh: &Mesh,
    exec: &Executor,
    recorder: Option<&mut ManifestRecorder>,
) -> Result<RunReport, ExecError> {
    let marks = MarkTable::new(mesh.tri_capacity());
    let initial = check::bad_triangles(mesh);

    let op = |t: &u32, ctx: &mut Ctx<'_, u32>| -> OpResult {
        ctx.acquire(*t)?;
        if !mesh.alive(*t) {
            // Consumed by an earlier cavity; nothing to refine.
            return ctx.failsafe().and(Ok(()));
        }
        let payload = match ctx.take::<Option<(Cavity, Point)>>() {
            Some(p) => p,
            None => {
                let mut visit = |tri: u32| -> Result<(), Abort> {
                    ctx.acquire(tri)?;
                    if mesh.alive(tri) {
                        Ok(())
                    } else {
                        Err(Abort::Conflict)
                    }
                };
                let computed = match insertion_point(mesh, *t, &mut visit)? {
                    None => None,
                    Some((seed, p)) => {
                        let cavity = grow(mesh, p, seed, &mut visit)?;
                        Some((cavity, p))
                    }
                };
                ctx.checkpoint(computed)?
            }
        };
        ctx.failsafe()?;
        let Some((cavity, p)) = payload else {
            return Ok(()); // unsplittable; leave as-is
        };
        let v = mesh.add_vertex(p);
        let created = retriangulate(mesh, &cavity, v);
        ctx.count_atomics(1);
        for &nt in &created {
            let [x, y, z] = mesh.tri_points(nt);
            if is_bad(x, y, z) {
                ctx.push(nt);
            }
        }
        // A boundary split may leave the original bad triangle alive
        // (Ruppert: retry it after the encroached segment is gone).
        if mesh.alive(*t) {
            ctx.push(*t);
        }
        Ok(())
    };

    let spec = exec.iterate(initial);
    let spec = match recorder {
        Some(r) => spec.record(r),
        None => spec,
    };
    spec.try_run(&marks, &op)
}

/// Statistics of the PBBS-style deterministic dmr.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PbbsDmrStats {
    /// Bulk-synchronous rounds.
    pub rounds: u64,
    /// Successful refinements.
    pub committed: u64,
    /// Failed reservation attempts (retries).
    pub aborted: u64,
    /// Priority writes issued.
    pub atomic_updates: u64,
    /// Per-round traces when requested.
    pub round_traces: Vec<galois_runtime::simtime::RoundTrace>,
}

/// Handwritten deterministic dmr (PBBS style): bulk-synchronous rounds of
/// deterministic reservations over a prefix of the bad-triangle worklist.
/// Priorities are monotone arrival indices, new bad triangles are appended
/// in committed-task order, so every round — and the final mesh geometry —
/// is thread-count independent.
pub fn pbbs(mesh: &Mesh, threads: usize, record_trace: bool) -> PbbsDmrStats {
    let reservations = pbbs_det::Reservations::new(mesh.tri_capacity());
    let mut stats = PbbsDmrStats::default();
    // Adjacent slots hold spatially adjacent triangles whose cavities
    // overlap; PBBS-style codes shuffle the worklist (with a fixed seed, so
    // the priorities — and the output — stay deterministic).
    let mut worklist: Vec<(u64, u32)> = {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut v = check::bad_triangles(mesh);
        v.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(0x9bb5));
        v.into_iter()
            .enumerate()
            .map(|(i, t)| (i as u64, t))
            .collect()
    };
    let mut next_priority = worklist.len() as u64;
    const PREFIX_DIVISOR: usize = 96;
    // The floor keeps endgame rounds from degenerating to one task. It must
    // be a constant, NOT `threads`: the prefix determines round composition
    // and hence the final geometry, so any thread-count input here breaks
    // the portability guarantee this function documents.
    const PREFIX_FLOOR: usize = 8;

    while !worklist.is_empty() {
        let prefix = worklist
            .len()
            .div_ceil(PREFIX_DIVISOR)
            .max(PREFIX_FLOOR)
            .min(worklist.len());
        let cur = &worklist[..prefix];
        // (cavity, insertion point, reserved lock set) per in-flight item.
        type Plan = Option<(Cavity, Point, Vec<u32>)>;
        let plans: Vec<Mutex<Plan>> = (0..prefix).map(|_| Mutex::new(None)).collect();
        let atomics = AtomicU64::new(0);
        let t0 = record_trace.then(std::time::Instant::now);

        // Reserve phase.
        run_on_threads(threads, |tid| {
            let mut local_atomics = 0u64;
            for k in chunk_range(prefix, threads, tid) {
                let (idx, t) = cur[k];
                if !mesh.alive(t) {
                    continue; // consumed earlier; drop
                }
                let mut nofail = |_t: u32| -> Result<(), Infallible> { Ok(()) };
                let Some((seed, p)) = insertion_point(mesh, t, &mut nofail).unwrap() else {
                    continue;
                };
                let cavity = grow(mesh, p, seed, &mut nofail).unwrap();
                let mut locks: Vec<u32> = cavity.tris.clone();
                for be in &cavity.boundary {
                    if be.outer != INVALID && !locks.contains(&be.outer) {
                        locks.push(be.outer);
                    }
                }
                for &l in &locks {
                    reservations.reserve(l as usize, idx);
                    local_atomics += 1;
                }
                *plans[k].lock().unwrap() = Some((cavity, p, locks));
            }
            atomics.fetch_add(local_atomics, Ordering::Relaxed);
        });
        let reserve_ns = t0.map(|t| t.elapsed().as_nanos() as f64);
        let t1 = record_trace.then(std::time::Instant::now);

        // Commit phase; per-slot created lists keep the append order
        // deterministic (flattened in worklist order afterwards).
        let failed_flags: Vec<AtomicU32> = (0..prefix).map(|_| AtomicU32::new(0)).collect();
        let created_per: Vec<Mutex<Vec<u32>>> =
            (0..prefix).map(|_| Mutex::new(Vec::new())).collect();
        run_on_threads(threads, |tid| {
            for k in chunk_range(prefix, threads, tid) {
                let (idx, _t) = cur[k];
                let Some((cavity, p, locks)) = plans[k].lock().unwrap().take() else {
                    continue;
                };
                let won = locks.iter().all(|&l| reservations.check(l as usize, idx));
                if won {
                    let v = mesh.add_vertex(p);
                    let created = retriangulate(mesh, &cavity, v);
                    let mut bad: Vec<u32> = Vec::new();
                    for nt in created {
                        let [x, y, z] = mesh.tri_points(nt);
                        if is_bad(x, y, z) {
                            bad.push(nt);
                        }
                    }
                    // Retry the original triangle if a boundary split left
                    // it alive (it is still bad by construction).
                    if mesh.alive(cur[k].1) {
                        bad.push(cur[k].1);
                    }
                    *created_per[k].lock().unwrap() = bad;
                } else {
                    failed_flags[k].store(1, Ordering::Relaxed);
                }
                for &l in &locks {
                    reservations.check_reset(l as usize, idx);
                }
            }
        });
        let commit_ns = t1.map(|t| t.elapsed().as_nanos() as f64);
        let t2 = record_trace.then(std::time::Instant::now);

        let mut next: Vec<(u64, u32)> = Vec::with_capacity(worklist.len());
        let mut committed_round = 0u64;
        for k in 0..prefix {
            if failed_flags[k].load(Ordering::Relaxed) == 1 {
                next.push(cur[k]);
            } else {
                committed_round += 1;
            }
        }
        let failed_round = next.len() as u64;
        next.extend_from_slice(&worklist[prefix..]);
        // Append new bad triangles in deterministic (worklist-position) order.
        for per in &created_per {
            for &nt in per.lock().unwrap().iter() {
                next.push((next_priority, nt));
                next_priority += 1;
            }
        }
        worklist = next;

        stats.rounds += 1;
        stats.committed += committed_round;
        stats.aborted += failed_round;
        stats.atomic_updates += atomics.load(Ordering::Relaxed);
        if let (Some(r), Some(c)) = (reserve_ns, commit_ns) {
            stats
                .round_traces
                .push(galois_runtime::simtime::RoundTrace {
                    inspect: galois_runtime::simtime::PhaseTrace::uniform(r, prefix as u64),
                    commit: galois_runtime::simtime::PhaseTrace::uniform(c, committed_round.max(1)),
                    serial_ns: 0.0,
                    sched_par_ns: t2.map(|t| t.elapsed().as_nanos() as f64).unwrap_or(0.0),
                    barriers: 2,
                });
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;

    fn refined_ok(mesh: &Mesh) {
        check::validate(mesh).unwrap();
        check::check_delaunay(mesh).unwrap();
        let q = check::quality(mesh);
        assert_eq!(q.bad, 0, "no refinable bad triangles may remain: {q:?}");
    }

    #[test]
    fn serial_refinement_fixes_all_bad_triangles() {
        let mesh = make_input(120, 3);
        let before = check::quality(&mesh);
        assert!(before.bad > 0, "input should contain bad triangles");
        let exec = Executor::new().schedule(Schedule::Serial);
        let report = galois(&mesh, &exec);
        refined_ok(&mesh);
        assert!(report.stats.committed as usize >= before.bad);
    }

    #[test]
    fn speculative_refinement_valid_any_threads() {
        for threads in [1usize, 4] {
            let mesh = make_input(120, 3);
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            galois(&mesh, &exec);
            refined_ok(&mesh);
        }
    }

    #[test]
    fn deterministic_refinement_portable_geometry() {
        let mut canon: Option<Vec<[(i64, i64); 3]>> = None;
        for threads in [1usize, 2, 4] {
            let mesh = make_input(120, 3);
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            galois(&mesh, &exec);
            refined_ok(&mesh);
            let c = check::canonical_triangles(&mesh);
            if let Some(prev) = &canon {
                assert_eq!(&c, prev, "refined mesh changed with {threads} threads");
            }
            canon = Some(c);
        }
    }

    #[test]
    fn pbbs_refinement_portable_geometry() {
        let mut canon: Option<Vec<[(i64, i64); 3]>> = None;
        for threads in [1usize, 3] {
            let mesh = make_input(120, 3);
            let stats = pbbs(&mesh, threads, false);
            refined_ok(&mesh);
            assert!(stats.committed > 0);
            let c = check::canonical_triangles(&mesh);
            if let Some(prev) = &canon {
                assert_eq!(&c, prev, "pbbs dmr changed with {threads} threads");
            }
            canon = Some(c);
        }
    }

    #[test]
    fn already_good_mesh_is_untouched() {
        // The bare square domain splits into two 45° right triangles:
        // nothing to refine.
        let mesh = galois_mesh::build::triangulate(&[]);
        assert_eq!(check::quality(&mesh).bad, 0);
        let exec = Executor::new().schedule(Schedule::Serial);
        let report = galois(&mesh, &exec);
        assert_eq!(report.stats.committed, 0);
        assert_eq!(mesh.num_tris_alive(), 2);
    }
}

#[cfg(test)]
mod growth_probe {
    use super::*;
    use galois_core::Schedule;

    #[test]
    #[ignore]
    fn probe_growth() {
        let mesh = make_input(120, 3);
        let q0 = check::quality(&mesh);
        let v0 = mesh.num_verts();
        let exec = Executor::new().schedule(Schedule::Serial);
        let report = galois(&mesh, &exec);
        let q1 = check::quality(&mesh);
        eprintln!("before: {q0:?} verts={v0}");
        eprintln!(
            "after: {q1:?} verts={} committed={}",
            mesh.num_verts(),
            report.stats.committed
        );
    }
}
