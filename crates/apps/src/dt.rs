//! Delaunay triangulation (§4.1).
//!
//! Incremental Bowyer–Watson insertion of random points in the unit square,
//! reordered by BRIO (the Lonestar scheme; reordering time excluded from
//! measurements, matching §4.1). Tasks are point insertions; a task's
//! neighborhood is every triangle its location walk visits plus the cavity
//! and its boundary ring.
//!
//! The Delaunay triangulation of points in general position is unique, so
//! every variant produces the same *geometry* (verified via
//! [`galois_mesh::check::canonical_triangles`]); the variants differ in
//! schedule, work, and determinism of the *execution*.

use galois_core::{
    Abort, Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, RunReport,
};
use galois_geometry::brio::brio_order;
use galois_geometry::Point;
use galois_mesh::build::{first_alive, square_mesh};
use galois_mesh::cavity::{grow, locate, retriangulate, Cavity, LocateOutcome};
use galois_mesh::{GridLocator, Mesh};
use galois_runtime::pool::{chunk_range, run_on_threads};
use std::convert::Infallible;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Locator grid resolution: roughly one cell per ~16 points, so ring
/// searches almost always find a live nearby triangle.
fn locator_resolution(points: usize) -> usize {
    ((points / 16).max(4) as f64).sqrt().ceil() as usize
}

/// Next power of two helper for the locator grid.
fn pow2_at_least(v: usize) -> usize {
    v.next_power_of_two()
}

/// Sequential baseline: BRIO order + Bowyer–Watson (Figure 8's dt row).
pub fn seq(points: &[Point], brio_seed: u64) -> Mesh {
    let order = brio_order(points, brio_seed);
    let mut b = galois_mesh::build::SeqBuilder::new(points.len());
    for &i in &order {
        b.insert(points[i]);
    }
    b.into_mesh()
}

/// The shared Galois operator for dt, run under `exec`'s schedule.
///
/// Returns the finished hull mesh and the run report.
pub fn galois(points: &[Point], brio_seed: u64, exec: &Executor) -> (Mesh, RunReport) {
    try_galois(points, brio_seed, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows come back as [`ExecError`] instead of unwinding.
pub fn try_galois(
    points: &[Point],
    brio_seed: u64,
    exec: &Executor,
) -> Result<(Mesh, RunReport), ExecError> {
    galois_impl(points, brio_seed, exec, None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`], capturing (or replay-verifying) the
/// run's canonical hash chain for record/replay.
pub fn try_galois_recorded(
    points: &[Point],
    brio_seed: u64,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<(Mesh, RunReport), ExecError> {
    galois_impl(points, brio_seed, exec, Some(recorder))
}

fn galois_impl(
    points: &[Point],
    brio_seed: u64,
    exec: &Executor,
    recorder: Option<&mut ManifestRecorder>,
) -> Result<(Mesh, RunReport), ExecError> {
    let order = brio_order(points, brio_seed);
    let tasks: Vec<Point> = order.iter().map(|&i| points[i]).collect();
    let mesh = square_mesh(points.len(), 0, 0);
    let marks = MarkTable::new(mesh.tri_capacity());
    let locator = GridLocator::new(pow2_at_least(locator_resolution(points.len())));

    let op = |p: &Point, ctx: &mut Ctx<'_, Point>| -> OpResult {
        let cavity = match ctx.take::<Cavity>() {
            Some(c) => c,
            None => {
                // visit = acquire + liveness check: a dead triangle on the
                // path means a racing cavity consumed it (speculative mode
                // only; deterministic phases see stable state).
                let mut visit = |t: u32| -> Result<(), Abort> {
                    ctx.acquire(t)?;
                    if mesh.alive(t) {
                        Ok(())
                    } else {
                        Err(Abort::Conflict)
                    }
                };
                let start = locator
                    .hint(&mesh, *p)
                    .unwrap_or_else(|| first_alive(&mesh));
                let seed = match locate(&mesh, *p, start, &mut visit)? {
                    LocateOutcome::Found(t) => t,
                    LocateOutcome::OnVertex { .. } => return Ok(()), // duplicate point
                    LocateOutcome::OutsideBoundary { .. } => {
                        unreachable!("inputs lie inside the square domain")
                    }
                };
                let c = grow(&mesh, *p, seed, &mut visit)?;
                ctx.checkpoint(c)?
            }
        };
        ctx.failsafe()?;
        let v = mesh.add_vertex(*p);
        let created = retriangulate(&mesh, &cavity, v);
        locator.update(*p, created[0]);
        ctx.count_atomics(1);
        Ok(())
    };

    let spec = exec.iterate(tasks);
    let spec = match recorder {
        Some(r) => spec.record(r),
        None => spec,
    };
    let report = spec.try_run(&marks, &op)?;
    Ok((mesh, report))
}

/// Statistics of the PBBS-style deterministic dt.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PbbsDtStats {
    /// Bulk-synchronous rounds.
    pub rounds: u64,
    /// Successful insertions.
    pub committed: u64,
    /// Failed reservation attempts (retries).
    pub aborted: u64,
    /// Priority writes issued.
    pub atomic_updates: u64,
    /// Per-round traces when requested.
    pub round_traces: Vec<galois_runtime::simtime::RoundTrace>,
}

/// Handwritten deterministic dt (PBBS style): rounds of deterministic
/// reservations over a prefix of the remaining points. Each point computes
/// its cavity against the round-start mesh and reserves the cavity plus its
/// boundary ring with its (fixed) insertion index; winners retriangulate.
///
/// Points are processed in a seeded *random* order: §4.1 notes the PBBS
/// implementation randomizes points offline (unlike Lonestar's online BRIO),
/// which also keeps same-round cavities spread apart.
pub fn pbbs(
    points: &[Point],
    shuffle_seed: u64,
    threads: usize,
    record_trace: bool,
) -> (Mesh, PbbsDtStats) {
    let tasks: Vec<Point> = {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut v = points.to_vec();
        v.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(shuffle_seed));
        v
    };
    let mesh = square_mesh(points.len(), 0, 0);
    let reservations = pbbs_det::Reservations::new(mesh.tri_capacity());
    let locator = GridLocator::new(pow2_at_least(locator_resolution(points.len())));
    let mut stats = PbbsDtStats::default();

    let mut remaining: Vec<(u64, Point)> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    // PBBS prefix factor (a tuned constant — exactly the kind of
    // performance parameter the paper notes these codes have, §6). Larger
    // divisors mean smaller rounds: fewer intra-round cavity conflicts at
    // the cost of more bulk-synchronous rounds.
    const PREFIX_DIVISOR: usize = 96;

    let mut inserted = 4usize; // the domain corners
    while !remaining.is_empty() {
        // Prefix grows with the mesh (PBBS-style prefix doubling): while the
        // mesh is small almost any two cavities collide, so early rounds
        // stay small and later rounds widen toward remaining/divisor.
        let prefix = remaining
            .len()
            .div_ceil(PREFIX_DIVISOR)
            .min(2 * inserted)
            .max(threads.min(remaining.len()))
            .min(remaining.len());
        let cur = &remaining[..prefix];
        // (cavity, reserved lock set) per in-flight item.
        type Plan = Option<(Cavity, Vec<u32>)>;
        let cavities: Vec<Mutex<Plan>> = (0..prefix).map(|_| Mutex::new(None)).collect();
        let atomics = AtomicU64::new(0);
        let t0 = record_trace.then(std::time::Instant::now);

        // Reserve phase: locate, grow, reserve cavity ∪ boundary ring.
        run_on_threads(threads, |tid| {
            let mut local_atomics = 0u64;
            for k in chunk_range(prefix, threads, tid) {
                let (idx, p) = cur[k];
                let mut nofail = |_t: u32| -> Result<(), Infallible> { Ok(()) };
                let start = locator.hint(&mesh, p).unwrap_or_else(|| first_alive(&mesh));
                let seed = match locate(&mesh, p, start, &mut nofail).unwrap() {
                    LocateOutcome::Found(t) => t,
                    LocateOutcome::OnVertex { .. } => continue, // duplicate: drop
                    LocateOutcome::OutsideBoundary { .. } => unreachable!("square domain"),
                };
                let cavity = grow(&mesh, p, seed, &mut nofail).unwrap();
                let mut locks: Vec<u32> = cavity.tris.clone();
                for be in &cavity.boundary {
                    if be.outer != galois_mesh::INVALID && !locks.contains(&be.outer) {
                        locks.push(be.outer);
                    }
                }
                for &t in &locks {
                    reservations.reserve(t as usize, idx);
                    local_atomics += 1;
                }
                *cavities[k].lock().unwrap() = Some((cavity, locks));
            }
            atomics.fetch_add(local_atomics, Ordering::Relaxed);
        });
        let reserve_ns = t0.map(|t| t.elapsed().as_nanos() as f64);
        let t1 = record_trace.then(std::time::Instant::now);

        // Commit phase: winners apply; everyone clears their reservations.
        let failed_flags: Vec<AtomicU32> = (0..prefix).map(|_| AtomicU32::new(0)).collect();
        run_on_threads(threads, |tid| {
            for k in chunk_range(prefix, threads, tid) {
                let (idx, p) = cur[k];
                let Some((cavity, locks)) = cavities[k].lock().unwrap().take() else {
                    continue; // dropped duplicate
                };
                let won = locks.iter().all(|&t| reservations.check(t as usize, idx));
                if won {
                    let v = mesh.add_vertex(p);
                    let created = retriangulate(&mesh, &cavity, v);
                    locator.update(p, created[0]);
                } else {
                    failed_flags[k].store(1, Ordering::Relaxed);
                }
                for &t in &locks {
                    reservations.check_reset(t as usize, idx);
                }
            }
        });
        let commit_ns = t1.map(|t| t.elapsed().as_nanos() as f64);
        let t2 = record_trace.then(std::time::Instant::now);

        let mut next: Vec<(u64, Point)> = Vec::with_capacity(remaining.len());
        let mut committed_round = 0u64;
        for k in 0..prefix {
            if failed_flags[k].load(Ordering::Relaxed) == 1 {
                next.push(cur[k]);
            } else {
                committed_round += 1;
            }
        }
        inserted += committed_round as usize;
        let failed_round = next.len() as u64;
        next.extend_from_slice(&remaining[prefix..]);
        remaining = next;

        stats.rounds += 1;
        stats.committed += committed_round;
        stats.aborted += failed_round;
        stats.atomic_updates += atomics.load(Ordering::Relaxed);
        if let (Some(r), Some(c)) = (reserve_ns, commit_ns) {
            stats
                .round_traces
                .push(galois_runtime::simtime::RoundTrace {
                    inspect: galois_runtime::simtime::PhaseTrace::uniform(r, prefix as u64),
                    commit: galois_runtime::simtime::PhaseTrace::uniform(c, committed_round.max(1)),
                    serial_ns: 0.0,
                    sched_par_ns: t2.map(|t| t.elapsed().as_nanos() as f64).unwrap_or(0.0),
                    barriers: 2,
                });
        }
    }

    (mesh, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;
    use galois_geometry::point::random_points;
    use galois_mesh::check;

    fn pts() -> Vec<Point> {
        random_points(250, 21)
    }

    #[test]
    fn galois_serial_matches_seq_builder() {
        let pts = pts();
        let expect = check::canonical_triangles(&seq(&pts, 5));
        let exec = Executor::new().schedule(Schedule::Serial);
        let (mesh, report) = galois(&pts, 5, &exec);
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        assert_eq!(check::canonical_triangles(&mesh), expect);
        assert_eq!(report.stats.committed, 250);
    }

    #[test]
    fn galois_speculative_unique_triangulation() {
        let pts = pts();
        let expect = check::canonical_triangles(&seq(&pts, 5));
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            let (mesh, report) = galois(&pts, 5, &exec);
            check::validate(&mesh).unwrap();
            check::check_delaunay(&mesh).unwrap();
            assert_eq!(
                check::canonical_triangles(&mesh),
                expect,
                "threads={threads}"
            );
            assert_eq!(report.stats.committed, 250);
        }
    }

    #[test]
    fn galois_deterministic_unique_triangulation() {
        let pts = pts();
        let expect = check::canonical_triangles(&seq(&pts, 5));
        for threads in [1usize, 2, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            let (mesh, report) = galois(&pts, 5, &exec);
            check::validate(&mesh).unwrap();
            check::check_delaunay(&mesh).unwrap();
            assert_eq!(
                check::canonical_triangles(&mesh),
                expect,
                "threads={threads}"
            );
            assert_eq!(report.stats.committed, 250);
            assert!(report.stats.rounds > 0);
        }
    }

    #[test]
    fn pbbs_matches_and_is_portable() {
        let pts = pts();
        let expect = check::canonical_triangles(&seq(&pts, 5));
        for threads in [1usize, 3] {
            let (mesh, stats) = pbbs(&pts, 5, threads, false);
            check::validate(&mesh).unwrap();
            check::check_delaunay(&mesh).unwrap();
            assert_eq!(
                check::canonical_triangles(&mesh),
                expect,
                "threads={threads}"
            );
            assert_eq!(stats.committed, 250);
        }
    }

    #[test]
    fn tiny_inputs() {
        let three = vec![
            Point::from_grid(0, 0),
            Point::from_grid(1000, 0),
            Point::from_grid(0, 1000),
        ];
        let mesh = seq(&three, 1);
        // (0,0) duplicates a corner; the other two lie on the square's
        // sides, so all 6 vertices are on the hull: 2*6 - 2 - 6 = 4.
        assert_eq!(mesh.num_tris_alive(), 4);
        galois_mesh::check::validate(&mesh).unwrap();
        let exec = Executor::new()
            .threads(2)
            .schedule(Schedule::deterministic());
        let (mesh2, _) = galois(&three, 1, &exec);
        assert_eq!(
            check::canonical_triangles(&mesh),
            check::canonical_triangles(&mesh2)
        );
    }
}
