//! Maximal matching (extension).
//!
//! The paper's benchmark selection excludes maximal matching "because of its
//! similarity to maximal independent set" (§4.1); it is included here as an
//! extension exercising a different conflict shape: a task locks an *edge's
//! two endpoints*, so conflicts follow the line graph rather than the vertex
//! neighborhood.
//!
//! - **seq**: greedy matching in edge order (the lexicographically first
//!   maximal matching).
//! - **g-n / g-d**: one Galois operator over edges; endpoints are the
//!   neighborhood.
//! - **pbbs**: deterministic reservations over edges with edge-index
//!   priorities — exactly the sequential greedy outcome, in parallel.

use galois_core::{Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, RunReport};
use galois_graph::csr::NodeId;
use galois_graph::{AtomicArray, CsrGraph};
use pbbs_det::{speculative_for, SpecForStats, Step};

/// Sentinel for "unmatched".
pub const UNMATCHED: u32 = u32::MAX;

/// Collects each undirected edge once (u < v), in deterministic order.
pub fn edge_list(g: &CsrGraph) -> Vec<(NodeId, NodeId)> {
    // On a symmetrized graph exactly half the arcs satisfy u < v; reserving
    // up front turns the growth reallocations into a single allocation.
    let mut edges = Vec::with_capacity(g.num_edges() / 2 + 1);
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Sequential greedy matching in edge order. Returns `mate[v]`.
pub fn seq(g: &CsrGraph) -> Vec<u32> {
    let mut mate = vec![UNMATCHED; g.num_nodes()];
    for (u, v) in edge_list(g) {
        if mate[u as usize] == UNMATCHED && mate[v as usize] == UNMATCHED {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }
    mate
}

/// The shared Galois operator: task = edge, neighborhood = its endpoints.
pub fn galois(g: &CsrGraph, exec: &Executor) -> (Vec<u32>, RunReport) {
    try_galois(g, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows come back as [`ExecError`] instead of unwinding.
pub fn try_galois(g: &CsrGraph, exec: &Executor) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, exec, None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`], capturing (or replay-verifying) the
/// run's canonical hash chain for record/replay.
pub fn try_galois_recorded(
    g: &CsrGraph,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, exec, Some(recorder))
}

fn galois_impl(
    g: &CsrGraph,
    exec: &Executor,
    recorder: Option<&mut ManifestRecorder>,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    let mate = AtomicArray::new_filled(g.num_nodes(), UNMATCHED);
    let marks = MarkTable::new(g.num_nodes());
    let edges = edge_list(g);
    let op = |t: &(NodeId, NodeId), ctx: &mut Ctx<'_, (NodeId, NodeId)>| -> OpResult {
        let (u, v) = *t;
        ctx.acquire(u)?;
        ctx.acquire(v)?;
        ctx.failsafe()?;
        if mate.get(u as usize) == UNMATCHED && mate.get(v as usize) == UNMATCHED {
            mate.set(u as usize, v);
            mate.set(v as usize, u);
        }
        Ok(())
    };
    let spec = exec.iterate(edges);
    let spec = match recorder {
        Some(r) => spec.record(r),
        None => spec,
    };
    let report = spec.try_run(&marks, &op)?;
    Ok((mate.snapshot(), report))
}

/// Handwritten deterministic matching (PBBS style): edges reserve both
/// endpoints with their edge index; winners match, losers whose endpoints
/// are both still free retry.
pub fn pbbs(g: &CsrGraph, threads: usize, record_trace: bool) -> (Vec<u32>, SpecForStats) {
    let mate = AtomicArray::new_filled(g.num_nodes(), UNMATCHED);
    let reservations = pbbs_det::Reservations::new(g.num_nodes());
    let edges = edge_list(g);

    struct MatchStep<'a> {
        edges: &'a [(NodeId, NodeId)],
        mate: &'a AtomicArray,
        r: &'a pbbs_det::Reservations,
    }
    impl Step for MatchStep<'_> {
        fn reserve(&self, i: u64) -> bool {
            let (u, v) = self.edges[i as usize];
            if self.mate.get(u as usize) != UNMATCHED || self.mate.get(v as usize) != UNMATCHED {
                return false; // an endpoint is already matched: drop
            }
            self.r.reserve(u as usize, i);
            self.r.reserve(v as usize, i);
            true
        }
        fn commit(&self, i: u64) -> bool {
            let (u, v) = self.edges[i as usize];
            let won_u = self.r.check(u as usize, i);
            let won_v = self.r.check(v as usize, i);
            if won_u && won_v {
                self.mate.set(u as usize, v);
                self.mate.set(v as usize, u);
            }
            // Free whatever we hold; losers retry next round (unless an
            // endpoint got matched, which reserve() detects).
            self.r.check_reset(u as usize, i);
            self.r.check_reset(v as usize, i);
            won_u && won_v || {
                // Retry only if both endpoints are still free.
                self.mate.get(u as usize) != UNMATCHED || self.mate.get(v as usize) != UNMATCHED
            }
        }
    }

    let step = MatchStep {
        edges: &edges,
        mate: &mate,
        r: &reservations,
    };
    let stats = speculative_for(&step, 0, edges.len() as u64, threads, 25, record_trace);
    (mate.snapshot(), stats)
}

/// Verifies the matching is valid (symmetric, edges exist) and maximal
/// (no edge joins two unmatched nodes).
pub fn verify(g: &CsrGraph, mate: &[u32]) -> Result<(), String> {
    for v in g.nodes() {
        let m = mate[v as usize];
        if m != UNMATCHED {
            if m as usize >= mate.len() {
                return Err(format!("mate[{v}] = {m} out of range"));
            }
            if mate[m as usize] != v {
                return Err(format!("matching not symmetric at {v} <-> {m}"));
            }
            if !g.neighbors(v).contains(&m) {
                return Err(format!("matched pair ({v},{m}) is not an edge"));
            }
        }
    }
    for (u, v) in edge_list(g) {
        if mate[u as usize] == UNMATCHED && mate[v as usize] == UNMATCHED {
            return Err(format!("edge ({u},{v}) joins two unmatched nodes"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;
    use galois_graph::gen;

    fn graph() -> CsrGraph {
        gen::uniform_random_undirected(500, 4, 91)
    }

    #[test]
    fn sequential_greedy_is_valid() {
        let g = graph();
        verify(&g, &seq(&g)).unwrap();
    }

    #[test]
    fn speculative_valid_any_threads() {
        let g = graph();
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            let (mate, report) = galois(&g, &exec);
            verify(&g, &mate).unwrap();
            assert_eq!(report.stats.committed as usize, edge_list(&g).len());
        }
    }

    #[test]
    fn deterministic_portable() {
        let g = graph();
        let mut prev: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            let (mate, _) = galois(&g, &exec);
            verify(&g, &mate).unwrap();
            if let Some(p) = &prev {
                assert_eq!(&mate, p, "matching changed at {threads} threads");
            }
            prev = Some(mate);
        }
    }

    #[test]
    fn pbbs_matches_sequential_greedy() {
        let g = graph();
        let expect = seq(&g);
        for threads in [1usize, 3] {
            let (mate, _) = pbbs(&g, threads, false);
            assert_eq!(mate, expect, "threads={threads}");
        }
    }

    #[test]
    fn path_graph_matches_alternating() {
        // 0-1-2-3: greedy matches (0,1) and (2,3).
        let g = CsrGraph::symmetrized(4, &[(0, 1), (1, 2), (2, 3)]);
        let mate = seq(&g);
        assert_eq!(mate, vec![1, 0, 3, 2]);
        let (p, _) = pbbs(&g, 2, false);
        assert_eq!(p, mate);
    }

    #[test]
    fn triangle_leaves_one_unmatched() {
        let g = CsrGraph::symmetrized(3, &[(0, 1), (1, 2), (0, 2)]);
        let mate = seq(&g);
        assert_eq!(mate, vec![1, 0, UNMATCHED]);
        verify(&g, &mate).unwrap();
    }
}
