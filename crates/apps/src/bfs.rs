//! Breadth-first search labelling.
//!
//! Computes hop distances from a source. Input per §4.2: a uniform random
//! graph where every node has `k` random out-neighbors.
//!
//! - **seq**: queue-based sequential BFS (stand-in for the Schardl–Leiserson
//!   baseline of Figure 8).
//! - **g-n / g-d**: one data-driven Galois operator — task `(v, d)` lowers
//!   `dist[v]` to `d` under `v`'s abstract lock and creates `(w, d+1)` for
//!   each out-neighbor. The distance map converges to true BFS distances
//!   under any schedule; the *work and schedule* are what differ between
//!   speculative and DIG execution.
//! - **pbbs**: handwritten deterministic level-synchronous BFS with
//!   priority-write parent selection (deterministic BFS tree).

use galois_core::{
    Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, Probe, RunReport,
};
use galois_graph::csr::NodeId;
use galois_graph::{AtomicArray, CsrGraph};
use galois_runtime::pool::{chunk_range, run_on_threads};
use galois_runtime::simtime::RoundTrace;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unreached-node label.
pub const INFINITY: u32 = u32::MAX;

/// Sequential BFS (the Figure 8 baseline). Returns hop distances.
pub fn seq(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    g.bfs_distances(source)
}

/// The shared Galois operator, run under whichever schedule `exec` selects.
///
/// Returns the distance array and the run report. Use an executor with
/// [`galois_core::Schedule::Speculative`] for `g-n` or
/// [`galois_core::Schedule::Deterministic`] for `g-d`.
pub fn galois(g: &CsrGraph, source: NodeId, exec: &Executor) -> (Vec<u32>, RunReport) {
    try_galois(g, source, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows come back as [`ExecError`] instead of unwinding.
/// Under the deterministic schedule the error is byte-identical at any
/// thread count.
pub fn try_galois(
    g: &CsrGraph,
    source: NodeId,
    exec: &Executor,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, source, exec, None, None)
}

/// [`try_galois`] with an external [`Probe`] attached to the run, so
/// harnesses (e.g. the `bench_all` rounds suite) can observe per-round
/// records — window, commit counts, phase timings — without changing the
/// executed schedule.
pub fn try_galois_probed(
    g: &CsrGraph,
    source: NodeId,
    exec: &Executor,
    probe: &mut dyn Probe,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, source, exec, Some(probe), None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`], capturing (or replay-verifying) the
/// run's canonical hash chain for record/replay.
pub fn try_galois_recorded(
    g: &CsrGraph,
    source: NodeId,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, source, exec, None, Some(recorder))
}

fn galois_impl(
    g: &CsrGraph,
    source: NodeId,
    exec: &Executor,
    probe: Option<&mut dyn Probe>,
    recorder: Option<&mut ManifestRecorder>,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    let n = g.num_nodes();
    let dist = AtomicArray::new_filled(n, INFINITY);
    let marks = MarkTable::new(n);
    let op = |t: &(NodeId, u32), ctx: &mut Ctx<'_, (NodeId, u32)>| -> OpResult {
        let (v, d) = *t;
        ctx.acquire(v)?;
        // Start pulling v's neighbor row while the label check and failsafe
        // run; the push loop below is the row's first real use.
        g.prefetch_row(v);
        if dist.get(v as usize) <= d {
            // Already labelled at least as well; nothing to write.
            return ctx.failsafe();
        }
        ctx.failsafe()?;
        dist.set(v as usize, d);
        // Push unconditionally: filtering on neighbors' (unlocked) labels
        // would make the created-task set schedule-dependent, breaking
        // determinism under DIG scheduling. The label check at task entry
        // prunes stale work instead.
        for &w in g.neighbors(v) {
            ctx.push((w, d + 1));
        }
        Ok(())
    };
    let spec = exec.iterate(vec![(source, 0)]);
    let spec = match probe {
        Some(p) => spec.probe(p),
        None => spec,
    };
    let spec = match recorder {
        Some(r) => spec.record(r),
        None => spec,
    };
    let report = spec.try_run(&marks, &op)?;
    Ok((dist.snapshot(), report))
}

/// Statistics of a PBBS-style run (level-synchronous rounds).
#[derive(Debug, Default, Clone)]
pub struct PbbsBfsStats {
    /// Level-synchronous rounds (= eccentricity of the source).
    pub rounds: u64,
    /// Edge relaxations attempted (atomic priority writes).
    pub atomic_updates: u64,
    /// Nodes labelled.
    pub visited: u64,
    /// Per-round traces when requested.
    pub round_traces: Vec<RoundTrace>,
}

/// Handwritten deterministic BFS: level-synchronous frontier expansion with
/// min-parent priority writes (the PBBS `deterministicBFS` scheme).
///
/// Returns `(distances, parents, stats)`; `parents[v]` is the *smallest*
/// frontier neighbor that reached `v`, making the BFS tree — not just the
/// distances — identical for every thread count.
pub fn pbbs(
    g: &CsrGraph,
    source: NodeId,
    threads: usize,
    record_trace: bool,
) -> (Vec<u32>, Vec<u32>, PbbsBfsStats) {
    let n = g.num_nodes();
    let dist = AtomicArray::new_filled(n, INFINITY);
    let parent: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut stats = PbbsBfsStats::default();
    let mut frontier: Vec<NodeId> = vec![source];
    dist.set(source as usize, 0);
    parent[source as usize].store(source as u64, Ordering::Relaxed);
    stats.visited = 1;
    let mut depth = 0u32;

    while !frontier.is_empty() {
        depth += 1;
        let t0 = record_trace.then(std::time::Instant::now);
        let atomic_count = AtomicU64::new(0);
        // Reserve phase: every frontier vertex priority-writes itself as
        // parent of each unlabelled neighbor; the minimum vertex id wins.
        run_on_threads(threads, |tid| {
            let mut local_atomics = 0;
            for i in chunk_range(frontier.len(), threads, tid) {
                let v = frontier[i];
                // Overlap the next row's cache miss with this row's writes
                // (crossing a chunk boundary just warms a neighbor's line).
                if let Some(&ahead) = frontier.get(i + 1) {
                    g.prefetch_row(ahead);
                }
                for &w in g.neighbors(v) {
                    if dist.get(w as usize) == INFINITY {
                        pbbs_det::priority::write_min(&parent[w as usize], v as u64);
                        local_atomics += 1;
                    }
                }
            }
            atomic_count.fetch_add(local_atomics, Ordering::Relaxed);
        });
        let reserve_ns = t0.map(|t| t.elapsed().as_nanos() as f64);
        let t1 = record_trace.then(std::time::Instant::now);

        // Commit phase: each frontier vertex collects the neighbors it won;
        // flattening in frontier order keeps the next frontier (and hence
        // everything downstream) deterministic.
        let winners: Vec<Vec<NodeId>> = {
            let mut per_v: Vec<Vec<NodeId>> = vec![Vec::new(); frontier.len()];
            let slices = galois_runtime::shared::SharedSlice::new(&mut per_v);
            let slices_ref = &slices;
            run_on_threads(threads, |tid| {
                for i in chunk_range(frontier.len(), threads, tid) {
                    let v = frontier[i];
                    if let Some(&ahead) = frontier.get(i + 1) {
                        g.prefetch_row(ahead);
                    }
                    // SAFETY: chunk ranges are disjoint across threads.
                    let mine = unsafe { slices_ref.get_mut(i) };
                    for &w in g.neighbors(v) {
                        if dist.get(w as usize) == INFINITY
                            && parent[w as usize].load(Ordering::Acquire) == v as u64
                            && !mine.contains(&w)
                        {
                            mine.push(w);
                        }
                    }
                }
            });
            per_v
        };
        let commit_ns = t1.map(|t| t.elapsed().as_nanos() as f64);
        let t2 = record_trace.then(std::time::Instant::now);
        let mut next: Vec<NodeId> = Vec::new();
        for ws in winners {
            for w in ws {
                dist.set(w as usize, depth);
                next.push(w);
            }
        }
        let serial_ns = t2.map(|t| t.elapsed().as_nanos() as f64).unwrap_or(0.0);

        stats.rounds += 1;
        stats.atomic_updates += atomic_count.load(Ordering::Relaxed);
        stats.visited += next.len() as u64;
        if let (Some(r), Some(c)) = (reserve_ns, commit_ns) {
            let work = frontier.len().max(1) as u64;
            stats.round_traces.push(RoundTrace {
                inspect: galois_runtime::simtime::PhaseTrace::uniform(r, work),
                commit: galois_runtime::simtime::PhaseTrace::uniform(c, work),
                serial_ns: 0.0,
                sched_par_ns: serial_ns,
                barriers: 2,
            });
        }
        frontier = next;
    }

    let parents = parent
        .iter()
        .map(|p| {
            let v = p.load(Ordering::Relaxed);
            if v == u64::MAX {
                INFINITY
            } else {
                v as u32
            }
        })
        .collect();
    (dist.snapshot(), parents, stats)
}

/// Checks that `dist` equals true BFS distances from `source`.
pub fn verify(g: &CsrGraph, source: NodeId, dist: &[u32]) -> Result<(), String> {
    let expect = g.bfs_distances(source);
    if dist.len() != expect.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            dist.len(),
            expect.len()
        ));
    }
    for (v, (&got, &want)) in dist.iter().zip(expect.iter()).enumerate() {
        if got != want {
            return Err(format!("dist[{v}] = {got}, expected {want}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;
    use galois_graph::gen;

    fn graph() -> CsrGraph {
        gen::uniform_random(500, 5, 13)
    }

    #[test]
    fn galois_speculative_matches_sequential() {
        let g = graph();
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            let (dist, report) = galois(&g, 0, &exec);
            verify(&g, 0, &dist).unwrap();
            assert!(report.stats.committed >= 500);
        }
    }

    #[test]
    fn galois_deterministic_matches_sequential_and_is_portable() {
        let g = graph();
        let mut prev: Option<(Vec<u32>, u64)> = None;
        for threads in [1usize, 2, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            let (dist, report) = galois(&g, 0, &exec);
            verify(&g, 0, &dist).unwrap();
            // Portability: identical schedule statistics at every thread count.
            if let Some((pd, pc)) = &prev {
                assert_eq!(&dist, pd);
                assert_eq!(report.stats.committed, *pc, "schedule changed with threads");
            }
            prev = Some((dist, report.stats.committed));
        }
    }

    #[test]
    fn pbbs_matches_sequential_and_tree_is_deterministic() {
        let g = graph();
        let (d1, p1, s1) = pbbs(&g, 0, 1, false);
        let (d4, p4, _s4) = pbbs(&g, 0, 4, false);
        verify(&g, 0, &d1).unwrap();
        assert_eq!(d1, d4);
        assert_eq!(p1, p4, "BFS tree must be thread-count independent");
        assert!(s1.rounds > 0);
    }

    #[test]
    fn pbbs_parents_are_valid_tree() {
        let g = graph();
        let (dist, parents, _) = pbbs(&g, 0, 2, false);
        for v in 0..dist.len() {
            if dist[v] != INFINITY && v != 0 {
                let p = parents[v] as usize;
                assert_eq!(dist[v], dist[p] + 1, "parent at wrong depth");
                assert!(g.neighbors(p as NodeId).contains(&(v as NodeId)));
            }
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        // Two disconnected components.
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let exec = Executor::new().schedule(Schedule::deterministic());
        let (dist, _) = galois(&g, 0, &exec);
        assert_eq!(dist, vec![0, 1, INFINITY, INFINITY]);
        let (dist, _, _) = pbbs(&g, 0, 2, false);
        assert_eq!(dist, vec![0, 1, INFINITY, INFINITY]);
    }
}
