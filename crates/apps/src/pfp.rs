//! Preflow-push max-flow with global relabeling (§4.1).
//!
//! Computes the max-flow *value* (phase 1 of push-relabel: all excess that
//! can reach the sink does; excess stranded at height ≥ n is not routed back
//! to the source). Input per §4.2: a random k-out graph with random
//! capacities, source 0, sink n−1.
//!
//! - **seq**: hi_pr-style sequential FIFO push-relabel with periodic global
//!   relabeling (the Goldberg–Tarjan baseline of Figure 8).
//! - **g-n / g-d**: one Galois operator — a task discharges one active node
//!   under locks on the node and its residual neighbors, activating
//!   neighbors by pushing tasks. Executor runs alternate with sequential
//!   global relabeling *bouts* (the global relabeling heuristic of
//!   Cherkassky & Goldberg, the paper's reference 13).

use galois_core::{Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, RunReport};
use galois_graph::csr::NodeId;
use galois_graph::FlowNetwork;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// Shared mutable per-node state of a push-relabel run.
struct PfpState {
    height: Vec<AtomicU32>,
    excess: Vec<AtomicI64>,
}

impl PfpState {
    fn new(n: usize) -> Self {
        PfpState {
            height: (0..n).map(|_| AtomicU32::new(0)).collect(),
            excess: (0..n).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    fn h(&self, v: usize) -> u32 {
        self.height[v].load(Ordering::Relaxed)
    }

    fn set_h(&self, v: usize, h: u32) {
        self.height[v].store(h, Ordering::Relaxed);
    }

    fn e(&self, v: usize) -> i64 {
        self.excess[v].load(Ordering::Relaxed)
    }

    fn add_e(&self, v: usize, d: i64) {
        // Under the abstract-lock protocol the owner is exclusive; a plain
        // read-modify-write is safe and cheap.
        self.excess[v].store(self.e(v) + d, Ordering::Relaxed);
    }
}

/// Exact distance-to-sink relabeling (the global relabeling heuristic).
///
/// BFS from the sink over reversed residual edges; unreachable nodes and the
/// source get height `n` (inactive in phase 1).
fn global_relabel(net: &FlowNetwork, state: &PfpState) {
    let n = net.num_nodes();
    for v in 0..n {
        state.set_h(v, n as u32);
    }
    let sink = net.sink();
    state.set_h(sink as usize, 0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(sink);
    while let Some(u) = queue.pop_front() {
        let du = state.h(u as usize);
        for e in net.edge_range(u) {
            // Edge x→u is the reverse of edge e: u→x; x steps toward the
            // sink through u iff residual(x→u) > 0.
            let x = net.edge_target(e);
            if x != net.source()
                && state.h(x as usize) == n as u32
                && net.residual(net.reverse_edge(e)) > 0
            {
                state.set_h(x as usize, du + 1);
                queue.push_back(x);
            }
        }
    }
    state.set_h(net.source() as usize, n as u32);
}

/// Saturates all source edges (the standard preflow initialization).
fn saturate_source(net: &FlowNetwork, state: &PfpState) {
    let s = net.source();
    for e in net.edge_range(s) {
        let c = net.residual(e);
        if c > 0 {
            net.push_flow(e, c);
            state.add_e(net.edge_target(e) as usize, c);
        }
    }
}

/// Phase 2: returns stranded excess (nodes at height ≥ n) to the source by
/// cancelling flow along source→node paths, turning the preflow into a valid
/// flow with the same value. Sequential and deterministic.
fn drain_excess(net: &FlowNetwork, state: &PfpState) {
    let n = net.num_nodes();
    let s = net.source();
    for v in 0..n as NodeId {
        if v == s || v == net.sink() {
            continue;
        }
        while state.e(v as usize) > 0 {
            // BFS from the source along edges carrying positive flow.
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            pred[s as usize] = Some(usize::MAX);
            queue.push_back(s);
            'bfs: while let Some(u) = queue.pop_front() {
                for e in net.edge_range(u) {
                    let t = net.edge_target(e);
                    if pred[t as usize].is_none() && net.flow_on(e) > 0 {
                        pred[t as usize] = Some(e);
                        if t == v {
                            break 'bfs;
                        }
                        queue.push_back(t);
                    }
                }
            }
            let Some(_) = pred[v as usize] else {
                unreachable!("excess at {v} must be reachable from the source by flow");
            };
            // Bottleneck = min path flow, capped by the excess.
            let mut delta = state.e(v as usize);
            let mut u = v as usize;
            while u != s as usize {
                let e = pred[u].unwrap();
                delta = delta.min(net.flow_on(e));
                u = net.edge_target(net.reverse_edge(e)) as usize;
            }
            // Cancel: push delta along each path edge's reverse.
            let mut u = v as usize;
            while u != s as usize {
                let e = pred[u].unwrap();
                net.push_flow(net.reverse_edge(e), delta);
                u = net.edge_target(net.reverse_edge(e)) as usize;
            }
            state.add_e(v as usize, -delta);
        }
    }
}

/// Statistics of a sequential run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SeqStats {
    /// Push operations performed.
    pub pushes: u64,
    /// Relabel operations performed.
    pub relabels: u64,
    /// Global relabeling sweeps.
    pub global_relabels: u64,
}

/// Sequential FIFO push-relabel with global relabeling (hi_pr-style).
///
/// Resets the network, computes phase-1 max flow, and returns
/// `(flow value, stats)`. The flow assignment is left on the network for
/// [`FlowNetwork::verify_flow`].
pub fn seq(net: &FlowNetwork) -> (i64, SeqStats) {
    net.reset();
    let n = net.num_nodes();
    let state = PfpState::new(n);
    let mut stats = SeqStats::default();
    global_relabel(net, &state);
    stats.global_relabels = 1;
    saturate_source(net, &state);

    let mut queue: std::collections::VecDeque<NodeId> = (0..n as NodeId)
        .filter(|&v| state.e(v as usize) > 0 && v != net.source() && v != net.sink())
        .collect();
    let mut relabels_since_global = 0u64;
    let interval = n as u64;

    while let Some(v) = queue.pop_front() {
        let vu = v as usize;
        if state.h(vu) >= n as u32 || state.e(vu) <= 0 {
            continue;
        }
        // Discharge v fully.
        while state.e(vu) > 0 && state.h(vu) < n as u32 {
            let mut pushed = false;
            for e in net.edge_range(v) {
                if net.residual(e) <= 0 {
                    continue;
                }
                let w = net.edge_target(e) as usize;
                if state.h(vu) == state.h(w) + 1 {
                    let delta = state.e(vu).min(net.residual(e));
                    net.push_flow(e, delta);
                    state.add_e(vu, -delta);
                    state.add_e(w, delta);
                    stats.pushes += 1;
                    pushed = true;
                    if w != net.source() as usize
                        && w != net.sink() as usize
                        && state.e(w) == delta
                        && state.h(w) < n as u32
                    {
                        queue.push_back(w as NodeId);
                    }
                    if state.e(vu) == 0 {
                        break;
                    }
                }
            }
            if state.e(vu) > 0 && !pushed {
                // Relabel: one above the lowest residual neighbor.
                let min_h = net
                    .edge_range(v)
                    .filter(|&e| net.residual(e) > 0)
                    .map(|e| state.h(net.edge_target(e) as usize))
                    .min()
                    .unwrap_or(u32::MAX - 1);
                state.set_h(vu, (min_h + 1).min(n as u32));
                stats.relabels += 1;
                relabels_since_global += 1;
                if relabels_since_global >= interval {
                    relabels_since_global = 0;
                    global_relabel(net, &state);
                    stats.global_relabels += 1;
                    if state.h(vu) >= n as u32 {
                        break;
                    }
                }
            }
        }
        if state.e(vu) > 0 && state.h(vu) < n as u32 {
            queue.push_back(v);
        }
    }
    drain_excess(net, &state);
    let flow = state.e(net.sink() as usize);
    (flow, stats)
}

/// Aggregate report of a Galois preflow-push run.
#[derive(Debug, Default)]
pub struct PfpReport {
    /// Merged executor statistics across bouts.
    pub stats: galois_runtime::stats::ExecStats,
    /// Executor bouts (each followed by a global relabel).
    pub bouts: u64,
    /// Per-bout reports (traces etc.).
    pub reports: Vec<RunReport>,
}

/// The Galois preflow-push: executor bouts alternating with global
/// relabeling. Resets the network first; returns `(flow value, report)`.
pub fn galois(net: &FlowNetwork, exec: &Executor) -> (i64, PfpReport) {
    try_galois(net, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows in any bout come back as [`ExecError`] instead of
/// unwinding. Quarantine counters from completed bouts are merged into the
/// report before the faulting bout's error is returned.
pub fn try_galois(net: &FlowNetwork, exec: &Executor) -> Result<(i64, PfpReport), ExecError> {
    galois_impl(net, exec, None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`]. Preflow-push runs *multiple* executor
/// bouts; the same recorder rides every bout, so the manifest's hash chain
/// spans the whole multi-bout run as one monotone sequence.
pub fn try_galois_recorded(
    net: &FlowNetwork,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<(i64, PfpReport), ExecError> {
    galois_impl(net, exec, Some(recorder))
}

fn galois_impl(
    net: &FlowNetwork,
    exec: &Executor,
    mut recorder: Option<&mut ManifestRecorder>,
) -> Result<(i64, PfpReport), ExecError> {
    net.reset();
    let n = net.num_nodes();
    let state = PfpState::new(n);
    global_relabel(net, &state);
    saturate_source(net, &state);
    let marks = MarkTable::new(n);
    let mut out = PfpReport::default();
    // Each node may relabel at most once per bout (the slot records the
    // bout generation that used it). This caps a bout at ~n relabels, so
    // bouts alternate with exact global relabelings at hi_pr's cadence —
    // and the stall decision depends only on the node's own state, keeping
    // the deterministic schedule thread-count independent.
    let relabel_gen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut bout_gen: u32 = 0;

    loop {
        let active: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| {
                state.e(v as usize) > 0
                    && state.h(v as usize) < n as u32
                    && v != net.source()
                    && v != net.sink()
            })
            .collect();
        if active.is_empty() {
            break;
        }

        let op = |t: &NodeId, ctx: &mut Ctx<'_, NodeId>| -> OpResult {
            let v = *t;
            let vu = v as usize;
            ctx.acquire(v)?;
            for e in net.edge_range(v) {
                ctx.acquire(net.edge_target(e))?;
            }
            ctx.failsafe()?;
            if v == net.source() || v == net.sink() {
                return Ok(());
            }
            let mut relabeled = relabel_gen[vu].load(Ordering::Relaxed) == bout_gen;
            while state.e(vu) > 0 && state.h(vu) < n as u32 {
                let mut pushed = false;
                for e in net.edge_range(v) {
                    if net.residual(e) <= 0 {
                        continue;
                    }
                    let w = net.edge_target(e) as usize;
                    if state.h(vu) == state.h(w) + 1 {
                        let delta = state.e(vu).min(net.residual(e));
                        net.push_flow(e, delta);
                        state.add_e(vu, -delta);
                        state.add_e(w, delta);
                        ctx.count_atomics(2);
                        pushed = true;
                        if w != net.source() as usize
                            && w != net.sink() as usize
                            && state.e(w) == delta
                            && state.h(w) < n as u32
                        {
                            ctx.push(w as NodeId);
                        }
                        if state.e(vu) == 0 {
                            break;
                        }
                    }
                }
                if state.e(vu) > 0 && !pushed {
                    if relabeled {
                        // This node used its relabel for the bout: stall
                        // until after the next global relabeling.
                        return Ok(());
                    }
                    let min_h = net
                        .edge_range(v)
                        .filter(|&e| net.residual(e) > 0)
                        .map(|e| state.h(net.edge_target(e) as usize))
                        .min()
                        .unwrap_or(u32::MAX - 1);
                    state.set_h(vu, (min_h + 1).min(n as u32));
                    relabel_gen[vu].store(bout_gen, Ordering::Relaxed);
                    relabeled = true;
                }
            }
            Ok(())
        };

        let spec = exec.iterate(active).with_ids(|v| *v as u64, n);
        // Reborrow the recorder per bout: every bout chains into the same
        // hash sequence.
        let spec = match recorder.as_deref_mut() {
            Some(r) => spec.record(r),
            None => spec,
        };
        let report = spec.try_run(&marks, &op)?;
        out.stats.committed += report.stats.committed;
        out.stats.aborted += report.stats.aborted;
        out.stats.atomic_updates += report.stats.atomic_updates;
        out.stats.inspected += report.stats.inspected;
        out.stats.quarantined += report.stats.quarantined;
        out.stats.rounds += report.stats.rounds;
        out.stats.elapsed += report.stats.elapsed;
        out.stats.threads = report.stats.threads;
        out.bouts += 1;
        out.reports.push(report);

        global_relabel(net, &state);
        bout_gen = bout_gen.wrapping_add(1);
    }
    drain_excess(net, &state);
    let flow = state.e(net.sink() as usize);
    Ok((flow, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;

    fn small_net(seed: u64) -> FlowNetwork {
        FlowNetwork::random(48, 4, 60, seed)
    }

    #[test]
    fn seq_matches_edmonds_karp() {
        for seed in [1u64, 2, 4, 5] {
            let net = small_net(seed);
            let expect = {
                net.reset();
                net.edmonds_karp()
            };
            let (flow, stats) = seq(&net);
            assert_eq!(flow, expect, "seed {seed}");
            assert!(stats.pushes > 0);
            net.verify_flow().unwrap();
        }
    }

    #[test]
    fn galois_speculative_matches_reference() {
        let net = small_net(9);
        net.reset();
        let expect = net.edmonds_karp();
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            let (flow, report) = galois(&net, &exec);
            assert_eq!(flow, expect, "threads {threads}");
            assert!(report.stats.committed > 0);
            net.verify_flow().unwrap();
        }
    }

    #[test]
    fn galois_deterministic_matches_and_is_portable() {
        let net = small_net(10);
        net.reset();
        let expect = net.edmonds_karp();
        let mut prev: Option<(u64, u64)> = None;
        for threads in [1usize, 2, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            let (flow, report) = galois(&net, &exec);
            assert_eq!(flow, expect, "threads {threads}");
            let sig = (report.stats.committed, report.bouts);
            if let Some(p) = &prev {
                assert_eq!(&sig, p, "schedule changed with {threads} threads");
            }
            prev = Some(sig);
        }
    }

    #[test]
    fn diamond_flow() {
        let net = FlowNetwork::from_edges(
            4,
            &[(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 5)],
            0,
            3,
        );
        let (flow, _) = seq(&net);
        assert_eq!(flow, 5);
        let exec = Executor::new().schedule(Schedule::deterministic());
        let (flow, _) = galois(&net, &exec);
        assert_eq!(flow, 5);
    }

    #[test]
    fn zero_flow_when_disconnected() {
        let net = FlowNetwork::from_edges(3, &[(0, 1, 9)], 0, 2);
        let (flow, _) = seq(&net);
        assert_eq!(flow, 0);
        let exec = Executor::new().schedule(Schedule::Speculative);
        let (flow, _) = galois(&net, &exec);
        assert_eq!(flow, 0);
    }
}
