//! Benchmark applications of the Deterministic Galois reproduction (§4.1).
//!
//! Five problems, each in several variants mirroring the paper's study:
//!
//! | app | problem | variants |
//! |-----|---------|----------|
//! | [`bfs`] | breadth-first search labelling | `seq`, `g-n`, `g-d`, `pbbs` |
//! | [`mis`] | maximal independent set | `seq`, `g-n`, `g-d`, `pbbs` |
//! | [`pfp`] | preflow-push max-flow with global relabeling | `seq` (hi_pr-style), `g-n`, `g-d` |
//! | [`dt`]  | Delaunay triangulation | `seq`, `g-n`, `g-d`, `pbbs` |
//! | [`dmr`] | Delaunay mesh refinement | `seq`, `g-n`, `g-d`, `pbbs` |
//! | [`mm`]  | maximal matching (extension; §4.1 set it aside) | `seq`, `g-n`, `g-d`, `pbbs` |
//!
//! The `g-n`/`g-d` variants share **one** operator; only the
//! [`galois_core::Schedule`] differs (on-demand determinism). The `pbbs`
//! variants are handwritten determinism-by-construction implementations on
//! [`pbbs_det`] primitives. The `seq` variants are the optimized sequential
//! baselines of Figure 8.

#![warn(missing_docs)]

pub mod bfs;
pub mod dmr;
pub mod dt;
pub mod mis;
pub mod mm;
pub mod pfp;

/// Names a benchmark variant in reports and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Best sequential implementation (Figure 8 baseline).
    Seq,
    /// Non-deterministic Galois (`g-n`).
    GaloisNondet,
    /// Deterministically scheduled Galois (`g-d`).
    GaloisDet,
    /// Handwritten deterministic PBBS-style implementation.
    Pbbs,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Variant::Seq => "seq",
            Variant::GaloisNondet => "g-n",
            Variant::GaloisDet => "g-d",
            Variant::Pbbs => "pbbs",
        };
        f.write_str(s)
    }
}
