//! Maximal independent set.
//!
//! Input per §4.2: the symmetrized uniform random graph. The Lonestar
//! algorithm is a greedy MIS — each node joins the set unless a neighbor
//! already did — which is *non-deterministic*: the resulting set depends on
//! processing order. The PBBS comparator computes the lexicographically
//! first MIS deterministically (§4.1 notes it is data-parallel).

use galois_core::{
    Ctx, ExecError, Executor, ManifestRecorder, MarkTable, OpResult, Probe, RunReport,
};
use galois_graph::csr::NodeId;
use galois_graph::{AtomicArray, CsrGraph};
use pbbs_det::{speculative_for, SpecForStats, Step};

/// Node states in the `flags` output array.
pub mod state {
    /// Not yet decided (only observable mid-run).
    pub const UNDECIDED: u32 = 0;
    /// In the independent set.
    pub const IN: u32 = 1;
    /// Out of the set (a neighbor is in).
    pub const OUT: u32 = 2;
}

/// Sequential greedy MIS in node order — the lexicographically first MIS.
pub fn seq(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut flags = vec![state::UNDECIDED; n];
    for v in 0..n {
        if flags[v] == state::UNDECIDED {
            flags[v] = state::IN;
            for &w in g.neighbors(v as NodeId) {
                flags[w as usize] = state::OUT;
            }
        }
    }
    // Normalize: nodes never touched are IN-eligible singletons... they were
    // all visited above, so every node is IN or OUT here.
    flags
}

/// The shared Galois operator (greedy MIS; one task per node, no pushes).
///
/// Under [`galois_core::Schedule::Speculative`] this is the non-deterministic
/// Lonestar `mis`; under [`galois_core::Schedule::Deterministic`] (with node
/// ids as pre-assigned priorities, §3.3) the committed order — and therefore
/// the set — is deterministic.
pub fn galois(g: &CsrGraph, exec: &Executor) -> (Vec<u32>, RunReport) {
    try_galois(g, exec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-surfacing variant of [`galois`]: operator panics, livelocks and
/// quarantine overflows come back as [`ExecError`] instead of unwinding.
/// Under the deterministic schedule the error is byte-identical at any
/// thread count.
pub fn try_galois(g: &CsrGraph, exec: &Executor) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, exec, None, None)
}

/// [`try_galois`] with an external [`Probe`] attached to the run, so
/// harnesses (e.g. the `bench_all` rounds suite) can observe per-round
/// records without changing the executed schedule.
pub fn try_galois_probed(
    g: &CsrGraph,
    exec: &Executor,
    probe: &mut dyn Probe,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, exec, Some(probe), None)
}

/// [`try_galois`] with a [`ManifestRecorder`] attached via
/// [`galois_core::LoopSpec::record`], capturing (or replay-verifying) the
/// run's canonical hash chain for record/replay.
pub fn try_galois_recorded(
    g: &CsrGraph,
    exec: &Executor,
    recorder: &mut ManifestRecorder,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    galois_impl(g, exec, None, Some(recorder))
}

fn galois_impl(
    g: &CsrGraph,
    exec: &Executor,
    probe: Option<&mut dyn Probe>,
    recorder: Option<&mut ManifestRecorder>,
) -> Result<(Vec<u32>, RunReport), ExecError> {
    let n = g.num_nodes();
    let flags = AtomicArray::new_filled(n, state::UNDECIDED);
    let marks = MarkTable::new(n);
    let op = |t: &NodeId, ctx: &mut Ctx<'_, NodeId>| -> OpResult {
        let v = *t;
        ctx.acquire(v)?;
        // Hoist the row: one offsets lookup serves both the acquire loop and
        // the membership fold.
        let row = g.neighbors(v);
        for &w in row {
            ctx.acquire(w)?;
        }
        ctx.failsafe()?;
        // Branch-light `|=` fold instead of a short-circuiting `any`: rows
        // are short and the IN hit rate is data-dependent, so the
        // unpredictable early-exit branch costs more than the few extra
        // flag loads it saves.
        let mut any_in = false;
        for &w in row {
            any_in |= flags.get(w as usize) == state::IN;
        }
        flags.set(v as usize, if any_in { state::OUT } else { state::IN });
        Ok(())
    };
    let tasks: Vec<NodeId> = g.nodes().collect();
    let spec = exec.iterate(tasks).with_ids(|v| *v as u64, n);
    let spec = match probe {
        Some(p) => spec.probe(p),
        None => spec,
    };
    let spec = match recorder {
        Some(r) => spec.record(r),
        None => spec,
    };
    let report = spec.try_run(&marks, &op)?;
    Ok((flags.snapshot(), report))
}

/// Handwritten deterministic MIS (PBBS style): computes the
/// lexicographically first MIS with deterministic reservations — node `v`
/// decides once every smaller-id neighbor has decided.
pub fn pbbs(g: &CsrGraph, threads: usize, record_trace: bool) -> (Vec<u32>, SpecForStats) {
    let n = g.num_nodes();
    let flags = AtomicArray::new_filled(n, state::UNDECIDED);

    struct MisStep<'a> {
        g: &'a CsrGraph,
        flags: &'a AtomicArray,
    }
    impl Step for MisStep<'_> {
        fn reserve(&self, _i: u64) -> bool {
            true
        }
        fn commit(&self, i: u64) -> bool {
            let v = i as u32;
            // Decide when all smaller-id neighbors have decided. Larger
            // neighbors cannot veto: if one later joins the set it will see
            // us only if we are OUT... so correctness needs the sequential
            // rule: v is IN iff no smaller neighbor is IN.
            let mut in_neighbor = false;
            for &w in self.g.neighbors(v) {
                if w < v {
                    match self.flags.get(w as usize) {
                        state::UNDECIDED => return false, // retry later
                        state::IN => in_neighbor = true,
                        _ => {}
                    }
                }
            }
            self.flags
                .set(v as usize, if in_neighbor { state::OUT } else { state::IN });
            true
        }
    }

    let step = MisStep { g, flags: &flags };
    let stats = speculative_for(&step, 0, n as u64, threads, 25, record_trace);
    (flags.snapshot(), stats)
}

/// Verifies independence and maximality.
pub fn verify(g: &CsrGraph, flags: &[u32]) -> Result<(), String> {
    for v in g.nodes() {
        match flags[v as usize] {
            state::IN => {
                for &w in g.neighbors(v) {
                    if flags[w as usize] == state::IN {
                        return Err(format!("adjacent nodes {v} and {w} both IN"));
                    }
                }
            }
            state::OUT => {
                if !g
                    .neighbors(v)
                    .iter()
                    .any(|&w| flags[w as usize] == state::IN)
                {
                    return Err(format!("node {v} is OUT with no IN neighbor"));
                }
            }
            other => return Err(format!("node {v} undecided ({other})")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_core::Schedule;
    use galois_graph::gen;

    fn graph() -> CsrGraph {
        gen::uniform_random_undirected(400, 4, 77)
    }

    #[test]
    fn sequential_is_valid_and_lexicographic() {
        let g = graph();
        let flags = seq(&g);
        verify(&g, &flags).unwrap();
        // Node 0 always joins the lexicographically first MIS.
        assert_eq!(flags[0], state::IN);
    }

    #[test]
    fn speculative_is_valid_any_thread_count() {
        let g = graph();
        for threads in [1usize, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative);
            let (flags, report) = galois(&g, &exec);
            verify(&g, &flags).unwrap();
            assert_eq!(report.stats.committed, 400);
        }
    }

    #[test]
    fn deterministic_is_valid_and_portable() {
        let g = graph();
        let mut prev: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 4] {
            let exec = Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic());
            let (flags, _) = galois(&g, &exec);
            verify(&g, &flags).unwrap();
            if let Some(p) = &prev {
                assert_eq!(
                    &flags, p,
                    "deterministic MIS changed with {threads} threads"
                );
            }
            prev = Some(flags);
        }
    }

    #[test]
    fn pbbs_matches_sequential_lexicographic_mis() {
        let g = graph();
        let expect = seq(&g);
        for threads in [1usize, 3] {
            let (flags, stats) = pbbs(&g, threads, false);
            assert_eq!(flags, expect, "threads={threads}");
            assert_eq!(stats.committed, 400);
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = CsrGraph::from_edges(1, &[]);
        let (flags, _) = pbbs(&g, 2, false);
        assert_eq!(flags, vec![state::IN]);
        let exec = Executor::new().schedule(Schedule::deterministic());
        let (flags, _) = galois(&g, &exec);
        assert_eq!(flags, vec![state::IN]);
    }

    #[test]
    fn path_graph_alternates() {
        // 0-1-2-3-4 path: lexicographic MIS = {0, 2, 4}.
        let g = CsrGraph::symmetrized(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let flags = seq(&g);
        assert_eq!(
            flags,
            vec![state::IN, state::OUT, state::IN, state::OUT, state::IN]
        );
        let (pbbs_flags, _) = pbbs(&g, 2, false);
        assert_eq!(pbbs_flags, flags);
    }
}
