//! Floating-point expansion arithmetic and adaptive predicates.
//!
//! The primary predicates of this crate ([`crate::predicates`]) are exact
//! because inputs are grid-snapped. This module provides the
//! Shewchuk-style alternative for *raw* `f64` coordinates — what the
//! original Galois/PBBS codes use — built on error-free transformations:
//!
//! - [`two_sum`] / [`two_product`]: exact sum/product as `(head, tail)`
//!   pairs (Knuth/Dekker).
//! - [`Expansion`]: a nonoverlapping sum of `f64` components, closed under
//!   addition and scaling.
//! - [`orient2d_adaptive`] / [`incircle_adaptive`]: a fast floating-point
//!   evaluation with a forward error bound, falling back to fully exact
//!   expansion arithmetic only when the sign is uncertain.
//!
//! These are used by the property tests to cross-validate the grid
//! predicates, and are available to applications that cannot snap their
//! inputs.

/// Exact sum: returns `(x, y)` with `x = fl(a + b)` and `a + b = x + y`
/// exactly (Knuth's TwoSum; no magnitude precondition).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let y = (a - av) + (b - bv);
    (x, y)
}

/// Exact product: returns `(x, y)` with `x = fl(a * b)` and
/// `a * b = x + y` exactly (via fused multiply-add).
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let y = f64::mul_add(a, b, -x);
    (x, y)
}

/// A sum of `f64` components stored least-significant first; the components
/// are nonoverlapping, so the represented value is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    components: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    pub fn zero() -> Self {
        Expansion { components: vec![] }
    }

    /// An expansion holding exactly `v`.
    pub fn from_f64(v: f64) -> Self {
        Expansion {
            components: if v == 0.0 { vec![] } else { vec![v] },
        }
    }

    /// An expansion holding exactly `a * b`.
    pub fn from_product(a: f64, b: f64) -> Self {
        let (x, y) = two_product(a, b);
        let mut components = Vec::with_capacity(2);
        if y != 0.0 {
            components.push(y);
        }
        if x != 0.0 {
            components.push(x);
        }
        Expansion { components }
    }

    /// Number of nonzero components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the expansion is exactly zero.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Exact sum of two expansions (Shewchuk's fast-expansion-sum in its
    /// simple grow-expansion form: robust, O(m·n) worst case — fine for the
    /// ≤ 16-component expansions predicates produce).
    pub fn add(&self, other: &Expansion) -> Expansion {
        let mut result = self.clone();
        for &c in &other.components {
            result = result.grow(c);
        }
        result
    }

    /// Exact difference.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        let mut result = self.clone();
        for &c in &other.components {
            result = result.grow(-c);
        }
        result
    }

    /// Exact sum with a single `f64` (Shewchuk's grow-expansion).
    pub fn grow(&self, b: f64) -> Expansion {
        let mut q = b;
        let mut out = Vec::with_capacity(self.components.len() + 1);
        for &c in &self.components {
            let (sum, err) = two_sum(q, c);
            if err != 0.0 {
                out.push(err);
            }
            q = sum;
        }
        if q != 0.0 {
            out.push(q);
        }
        Expansion { components: out }
    }

    /// Exact product with a single `f64` (scale-expansion).
    pub fn scale(&self, b: f64) -> Expansion {
        let mut out = Expansion::zero();
        for &c in &self.components {
            out = out.add(&Expansion::from_product(c, b));
        }
        out
    }

    /// The expansion's sign: the sign of its most significant component.
    pub fn sign(&self) -> i32 {
        match self.components.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(&c) if c < 0.0 => -1,
            _ => 0,
        }
    }

    /// Approximate `f64` value (sum of components, most significant last).
    pub fn estimate(&self) -> f64 {
        self.components.iter().sum()
    }
}

/// Exact sign of `det [b - a, c - a]` over raw `f64` coordinates:
/// fast path with an error filter, exact expansion fallback.
pub fn orient2d_adaptive(ax: f64, ay: f64, bx: f64, by: f64, cx: f64, cy: f64) -> i32 {
    let detleft = (bx - ax) * (cy - ay);
    let detright = (by - ay) * (cx - ax);
    let det = detleft - detright;
    // Shewchuk's ccwerrboundA filter.
    let detsum = if detleft > 0.0 && detright > 0.0 {
        detleft + detright
    } else if detleft < 0.0 && detright < 0.0 {
        -(detleft + detright)
    } else {
        // Signs differ (or a zero): the fast determinant is reliable.
        return sign_of(det);
    };
    const CCWERRBOUND_A: f64 = (3.0 + 16.0 * f64::EPSILON) * f64::EPSILON / 2.0;
    if det.abs() >= CCWERRBOUND_A * detsum {
        return sign_of(det);
    }
    // Exact: expand det = (bx-ax)(cy-ay) - (by-ay)(cx-ax) without assuming
    // the differences are exact — compute over the 2x2 determinant of exact
    // differences via expansions of products of two_sums.
    let (bax, bax_e) = two_sum(bx, -ax);
    let (cay, cay_e) = two_sum(cy, -ay);
    let (bay, bay_e) = two_sum(by, -ay);
    let (cax, cax_e) = two_sum(cx, -ax);
    // (bax + bax_e)(cay + cay_e) - (bay + bay_e)(cax + cax_e), exactly.
    let left = Expansion::from_product(bax, cay)
        .add(&Expansion::from_product(bax, cay_e))
        .add(&Expansion::from_product(bax_e, cay))
        .add(&Expansion::from_product(bax_e, cay_e));
    let right = Expansion::from_product(bay, cax)
        .add(&Expansion::from_product(bay, cax_e))
        .add(&Expansion::from_product(bay_e, cax))
        .add(&Expansion::from_product(bay_e, cax_e));
    left.sub(&right).sign()
}

/// Exact incircle over raw `f64` coordinates (fully exact expansion
/// evaluation; no intermediate adaptive stages — simpler and still fast
/// enough for validation workloads).
#[allow(clippy::too_many_arguments)]
pub fn incircle_exact(
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
    cx: f64,
    cy: f64,
    dx: f64,
    dy: f64,
) -> i32 {
    // Rows are (ex, ey, ex^2 + ey^2) with e = p - d, all exact.
    let row = |px: f64, py: f64| -> (Expansion, Expansion, Expansion) {
        let (ex, exe) = two_sum(px, -dx);
        let (ey, eye) = two_sum(py, -dy);
        let x = Expansion::from_f64(exe).grow(ex);
        let y = Expansion::from_f64(eye).grow(ey);
        let sq = mul_expansions(&x, &x).add(&mul_expansions(&y, &y));
        (x, y, sq)
    };
    let (ax_, ay_, ad) = row(ax, ay);
    let (bx_, by_, bd) = row(bx, by);
    let (cx_, cy_, cd) = row(cx, cy);
    // det = ax(by*cd - cy*bd) - ay(bx*cd - cx*bd) + ad(bx*cy - cx*by)
    let t1 = mul_expansions(&by_, &cd).sub(&mul_expansions(&cy_, &bd));
    let t2 = mul_expansions(&bx_, &cd).sub(&mul_expansions(&cx_, &bd));
    let t3 = mul_expansions(&bx_, &cy_).sub(&mul_expansions(&cx_, &by_));
    mul_expansions(&ax_, &t1)
        .sub(&mul_expansions(&ay_, &t2))
        .add(&mul_expansions(&ad, &t3))
        .sign()
}

/// Exact product of two expansions.
fn mul_expansions(a: &Expansion, b: &Expansion) -> Expansion {
    let mut out = Expansion::zero();
    for &ac in &a.components {
        out = out.add(&b.scale(ac));
    }
    out
}

fn sign_of(v: f64) -> i32 {
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Adaptive incircle: float filter first, exact fallback.
#[allow(clippy::too_many_arguments)]
pub fn incircle_adaptive(
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
    cx: f64,
    cy: f64,
    dx: f64,
    dy: f64,
) -> i32 {
    let adx = ax - dx;
    let ady = ay - dy;
    let bdx = bx - dx;
    let bdy = by - dy;
    let cdx = cx - dx;
    let cdy = cy - dy;
    let alift = adx * adx + ady * ady;
    let blift = bdx * bdx + bdy * bdy;
    let clift = cdx * cdx + cdy * cdy;
    let det = alift * (bdx * cdy - cdx * bdy)
        + blift * (cdx * ady - adx * cdy)
        + clift * (adx * bdy - bdx * ady);
    let permanent = alift.abs() * (bdx * cdy).abs().max((cdx * bdy).abs())
        + blift.abs() * (cdx * ady).abs().max((adx * cdy).abs())
        + clift.abs() * (adx * bdy).abs().max((bdx * ady).abs());
    // A (deliberately conservative) error bound.
    const ERRBOUND: f64 = 32.0 * f64::EPSILON;
    if det.abs() > ERRBOUND * permanent {
        sign_of(det)
    } else {
        incircle_exact(ax, ay, bx, by, cx, cy, dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{incircle, orient2d_sign};

    #[test]
    fn two_sum_is_error_free() {
        let cases = [(1e16, 1.0), (0.1, 0.2), (-1e-30, 1e30), (3.5, -3.5)];
        for (a, b) in cases {
            let (x, y) = two_sum(a, b);
            // x + y == a + b exactly: verify via expansion re-evaluation.
            assert_eq!(x, a + b);
            // The error term recovers what rounding lost.
            if (a + b) - x == 0.0 {
                // When fl(a+b) is exact, y must be the exact residue.
                assert_eq!(x + y, a + b);
            }
        }
    }

    #[test]
    fn two_product_is_error_free() {
        let (x, y) = two_product(0.1, 0.1);
        assert_eq!(x, 0.1 * 0.1);
        assert!(
            y != 0.0,
            "0.01 is not representable; tail captures the error"
        );
        let (x2, y2) = two_product(2.0, 4.0);
        assert_eq!((x2, y2), (8.0, 0.0));
    }

    #[test]
    fn expansion_roundtrip_sign() {
        let e = Expansion::from_f64(1.0).grow(1e-30).grow(-1.0);
        assert_eq!(e.sign(), 1, "the 1e-30 residue decides");
        let z = Expansion::from_f64(5.0).grow(-5.0);
        assert_eq!(z.sign(), 0);
    }

    #[test]
    fn orient_adaptive_matches_grid_exact_on_grid_points() {
        use crate::point::random_points;
        let pts = random_points(60, 17);
        for w in pts.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            let got = orient2d_adaptive(a.x(), a.y(), b.x(), b.y(), c.x(), c.y());
            assert_eq!(got, orient2d_sign(a, b, c));
        }
    }

    #[test]
    fn orient_adaptive_resolves_near_degeneracy() {
        // Nearly collinear points that defeat naive f64 evaluation: the
        // classic Kettner et al. configuration.
        let s = |k: i32| 0.5 + k as f64 * f64::EPSILON;
        // Points exactly on a line have orientation 0...
        assert_eq!(orient2d_adaptive(0.0, 0.0, 0.5, 0.5, 1.0, 1.0), 0);
        // ...one ulp off is detected: det = bx*cy - by*cx = ±epsilon.
        assert_eq!(orient2d_adaptive(0.0, 0.0, s(1), 0.5, 1.0, 1.0), 1);
        assert_eq!(orient2d_adaptive(0.0, 0.0, 0.5, s(1), 1.0, 1.0), -1);
    }

    #[test]
    fn incircle_matches_grid_exact_on_grid_points() {
        use crate::point::random_points;
        let pts = random_points(40, 23);
        let d = pts[0];
        for w in pts[1..].windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            let got = incircle_adaptive(a.x(), a.y(), b.x(), b.y(), c.x(), c.y(), d.x(), d.y());
            assert_eq!(got, incircle(a, b, c, d), "at {a} {b} {c} {d}");
        }
    }

    #[test]
    fn incircle_exact_on_cocircular_points() {
        // Unit square corners are exactly cocircular even in f64.
        assert_eq!(incircle_exact(0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0), 0);
        assert_eq!(incircle_adaptive(0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.5, 0.5), 1);
    }

    /// Helper available to property tests: a `Point`-typed wrapper.
    pub fn orient_points(
        a: crate::point::Point,
        b: crate::point::Point,
        c: crate::point::Point,
    ) -> i32 {
        orient2d_adaptive(a.x(), a.y(), b.x(), b.y(), c.x(), c.y())
    }

    #[test]
    fn wrapper_compiles() {
        use crate::point::Point;
        let p = Point::from_grid(0, 0);
        let q = Point::from_grid(1, 0);
        let r = Point::from_grid(0, 1);
        assert_eq!(orient_points(p, q, r), 1);
    }
}
