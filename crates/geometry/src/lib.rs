//! Computational-geometry substrate for Delaunay triangulation and mesh
//! refinement.
//!
//! Robustness strategy: all mesh vertices are snapped to a `2^26 × 2^26`
//! integer grid over the unit square ([`point::Point::snapped`]). Grid
//! coordinates are exactly representable in `f64` *and* small enough that the
//! `orient2d` and `incircle` determinants fit in `i128`, so the predicates in
//! [`predicates`] are **exact** — no epsilon tuning, no floating-point
//! filter failures, and deterministic results, which the deterministic
//! scheduler's portability claims rely on. (The original Galois/PBBS codes
//! use Shewchuk's adaptive predicates over raw `f64`; exact integer
//! predicates over snapped inputs are the equivalent guarantee. See
//! DESIGN.md.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod brio;
pub mod expansion;
pub mod point;
pub mod predicates;
pub mod tri;

pub use point::Point;
pub use predicates::{incircle, orient2d, Orientation};
