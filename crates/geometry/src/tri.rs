//! Triangle measures: circumcenters and quality tests for mesh refinement.

use crate::point::Point;

/// Circumcenter of triangle `(a, b, c)`, computed in `f64` and snapped to
/// the grid (the inserted Steiner point of mesh refinement).
///
/// Returns `None` for (near-)degenerate triangles whose circumcenter is not
/// finite.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    // Work in grid units to keep magnitudes sane.
    let (ax, ay) = a.to_grid();
    let (bx, by) = b.to_grid();
    let (cx, cy) = c.to_grid();
    let (ax, ay) = (ax as f64, ay as f64);
    let (bx, by) = (bx as f64, by as f64);
    let (cx, cy) = (cx as f64, cy as f64);
    let d = 2.0 * ((bx - ax) * (cy - ay) - (by - ay) * (cx - ax));
    if d == 0.0 || !d.is_finite() {
        return None;
    }
    let b2 = (bx - ax) * (bx + ax) + (by - ay) * (by + ay);
    let c2 = (cx - ax) * (cx + ax) + (cy - ay) * (cy + ay);
    let ux = (b2 * (cy - ay) - c2 * (by - ay)) / d;
    let uy = (c2 * (bx - ax) - b2 * (cx - ax)) / d;
    if !ux.is_finite() || !uy.is_finite() {
        return None;
    }
    Some(Point::from_grid(ux.round() as i64, uy.round() as i64))
}

/// Squared length of the triangle's shortest edge, in grid units.
pub fn shortest_edge2(a: Point, b: Point, c: Point) -> i128 {
    a.dist2_grid(b).min(b.dist2_grid(c)).min(c.dist2_grid(a))
}

/// Cosine-squared-based minimum-angle test: whether the triangle's smallest
/// angle is below `min_angle_deg`.
///
/// Uses the law of cosines on exact squared edge lengths; the comparison is
/// done in `f64` (quality thresholds need no exactness — they only decide
/// *whether* to refine, not topological structure).
pub fn has_small_angle(a: Point, b: Point, c: Point, min_angle_deg: f64) -> bool {
    min_angle_deg_of(a, b, c) < min_angle_deg
}

/// The smallest interior angle in degrees (0 for degenerate triangles).
pub fn min_angle_deg_of(a: Point, b: Point, c: Point) -> f64 {
    let l2 = [
        b.dist2_grid(c) as f64, // opposite a
        c.dist2_grid(a) as f64, // opposite b
        a.dist2_grid(b) as f64, // opposite c
    ];
    if l2.contains(&0.0) {
        return 0.0;
    }
    let mut min_angle = f64::MAX;
    for i in 0..3 {
        let opp = l2[i];
        let e1 = l2[(i + 1) % 3];
        let e2 = l2[(i + 2) % 3];
        let cos = (e1 + e2 - opp) / (2.0 * (e1 * e2).sqrt());
        let angle = cos.clamp(-1.0, 1.0).acos().to_degrees();
        min_angle = min_angle.min(angle);
    }
    min_angle
}

/// Refinement guard: triangles with shortest edge below this squared grid
/// length are never refined, guaranteeing termination at finite precision
/// (see DESIGN.md; the threshold is 2^-12 of the unit square, i.e. 2^14 grid
/// units).
pub const MIN_REFINE_EDGE2: i128 = (1 << 14) * (1 << 14);

/// Whether a triangle is "bad" (needs refinement): smallest angle below 30°
/// and the triangle is still large enough to split safely.
pub fn is_bad(a: Point, b: Point, c: Point) -> bool {
    shortest_edge2(a, b, c) > MIN_REFINE_EDGE2 && has_small_angle(a, b, c, 30.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::from_grid(x, y)
    }

    #[test]
    fn circumcenter_of_right_triangle() {
        // Right triangle: circumcenter at hypotenuse midpoint.
        let c = circumcenter(p(0, 0), p(4, 0), p(0, 4)).unwrap();
        assert_eq!(c.to_grid(), (2, 2));
    }

    #[test]
    fn circumcenter_degenerate_is_none() {
        assert!(circumcenter(p(0, 0), p(2, 2), p(4, 4)).is_none());
    }

    #[test]
    fn equilateral_has_sixty_degree_angles() {
        // Approximate equilateral on the grid.
        let a = p(0, 0);
        let b = p(1000, 0);
        let c = p(500, 866);
        let m = min_angle_deg_of(a, b, c);
        assert!((m - 60.0).abs() < 0.1, "min angle {m}");
        assert!(!has_small_angle(a, b, c, 30.0));
    }

    #[test]
    fn skinny_triangle_is_bad() {
        let a = p(0, 0);
        let b = p(100_000, 0);
        let c = p(50_000, 2_000); // very flat
        assert!(has_small_angle(a, b, c, 30.0));
        assert!(is_bad(a, b, c));
    }

    #[test]
    fn tiny_triangles_are_never_bad() {
        // Below the refinement floor even if skinny.
        let a = p(0, 0);
        let b = p(9000, 0);
        let c = p(4500, 300);
        assert!(has_small_angle(a, b, c, 30.0));
        assert!(!is_bad(a, b, c), "guard suppresses refinement");
    }

    #[test]
    fn shortest_edge_identified() {
        assert_eq!(shortest_edge2(p(0, 0), p(3, 0), p(0, 10)), 9);
    }
}
