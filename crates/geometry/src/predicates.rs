//! Exact geometric predicates over grid-snapped points.
//!
//! With coordinates on the `2^26` grid (extended a few units for the
//! super-triangle, so grid integers stay below `2^30`), the `orient2d`
//! determinant is bounded by `2^61` and the `incircle` determinant by
//! `2^124` — both within `i128`. No floating-point rounding is involved, so
//! every predicate is exact and deterministic.

use crate::point::Point;

/// Result of an orientation test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `a → b → c` turns left (counter-clockwise).
    CounterClockwise,
    /// `a → b → c` turns right (clockwise).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Exact 2-D orientation: the sign of `det [b-a, c-a]`.
///
/// # Example
///
/// ```
/// use galois_geometry::{orient2d, Orientation, Point};
/// let a = Point::from_grid(0, 0);
/// let b = Point::from_grid(10, 0);
/// let c = Point::from_grid(0, 10);
/// assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
/// assert_eq!(orient2d(a, c, b), Orientation::Clockwise);
/// assert_eq!(orient2d(a, b, Point::from_grid(20, 0)), Orientation::Collinear);
/// ```
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    match orient2d_sign(a, b, c) {
        s if s > 0 => Orientation::CounterClockwise,
        s if s < 0 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

/// Sign of the orientation determinant: `+1` CCW, `-1` CW, `0` collinear.
pub fn orient2d_sign(a: Point, b: Point, c: Point) -> i32 {
    let (ax, ay) = a.to_grid();
    let (bx, by) = b.to_grid();
    let (cx, cy) = c.to_grid();
    let det = ((bx - ax) as i128) * ((cy - ay) as i128) - ((by - ay) as i128) * ((cx - ax) as i128);
    det.signum() as i32
}

/// Exact incircle test.
///
/// For `a, b, c` in counter-clockwise order, returns `+1` if `d` lies
/// strictly inside their circumcircle, `-1` strictly outside, `0` on it.
/// (For clockwise `a, b, c` the sign flips, per the standard determinant
/// formulation.)
///
/// # Example
///
/// ```
/// use galois_geometry::{incircle, Point};
/// let a = Point::from_grid(0, 0);
/// let b = Point::from_grid(4, 0);
/// let c = Point::from_grid(0, 4);
/// assert_eq!(incircle(a, b, c, Point::from_grid(1, 1)), 1); // inside
/// assert_eq!(incircle(a, b, c, Point::from_grid(100, 100)), -1); // outside
/// assert_eq!(incircle(a, b, c, Point::from_grid(4, 4)), 0); // cocircular
/// ```
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> i32 {
    let (dx, dy) = d.to_grid();
    let row = |p: Point| {
        let (px, py) = p.to_grid();
        let ex = (px - dx) as i128;
        let ey = (py - dy) as i128;
        (ex, ey, ex * ex + ey * ey)
    };
    let (ax, ay, ad) = row(a);
    let (bx, by, bd) = row(b);
    let (cx, cy, cd) = row(c);
    // 3x3 determinant by cofactor expansion. Terms bounded well inside i128
    // for grid coordinates below 2^30.
    let det = ax * (by * cd - cy * bd) - ay * (bx * cd - cx * bd) + ad * (bx * cy - cx * by);
    det.signum() as i32
}

/// Whether point `p` lies inside or on the boundary of CCW triangle
/// `(a, b, c)`.
pub fn in_triangle(a: Point, b: Point, c: Point, p: Point) -> bool {
    debug_assert_eq!(orient2d_sign(a, b, c), 1, "triangle must be CCW");
    orient2d_sign(a, b, p) >= 0 && orient2d_sign(b, c, p) >= 0 && orient2d_sign(c, a, p) >= 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::random_points;

    /// Brute-force check against rational arithmetic via f64 on tiny
    /// coordinates (exact there).
    fn orient_ref(a: Point, b: Point, c: Point) -> i32 {
        let v = (b.x() - a.x()) * (c.y() - a.y()) - (b.y() - a.y()) * (c.x() - a.x());
        if v > 0.0 {
            1
        } else if v < 0.0 {
            -1
        } else {
            0
        }
    }

    #[test]
    fn orientation_matches_reference_on_small_points() {
        let pts: Vec<Point> = (0..8)
            .flat_map(|x| (0..8).map(move |y| Point::from_grid(x, y)))
            .collect();
        for &a in &pts {
            for &b in &pts {
                for &c in pts.iter().step_by(3) {
                    assert_eq!(orient2d_sign(a, b, c), orient_ref(a, b, c));
                }
            }
        }
    }

    #[test]
    fn incircle_antisymmetry_and_rotation() {
        let pts = random_points(40, 3);
        let d = pts[0];
        for w in pts[1..].windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            if orient2d_sign(a, b, c) == 0 {
                continue;
            }
            // Rotating the first three arguments preserves the sign.
            assert_eq!(incircle(a, b, c, d), incircle(b, c, a, d));
            assert_eq!(incircle(a, b, c, d), incircle(c, a, b, d));
            // Swapping two flips it.
            assert_eq!(incircle(a, b, c, d), -incircle(b, a, c, d));
        }
    }

    #[test]
    fn incircle_known_values() {
        // Unit-square corners are cocircular.
        let a = Point::from_grid(0, 0);
        let b = Point::from_grid(2, 0);
        let c = Point::from_grid(2, 2);
        let d = Point::from_grid(0, 2);
        assert_eq!(incircle(a, b, c, d), 0);
        assert_eq!(incircle(a, b, c, Point::from_grid(1, 1)), 1);
        assert_eq!(incircle(a, b, c, Point::from_grid(3, 3)), -1);
    }

    #[test]
    fn in_triangle_boundary_counts() {
        let a = Point::from_grid(0, 0);
        let b = Point::from_grid(4, 0);
        let c = Point::from_grid(0, 4);
        assert!(in_triangle(a, b, c, Point::from_grid(1, 1)));
        assert!(in_triangle(a, b, c, Point::from_grid(2, 0)), "on edge");
        assert!(in_triangle(a, b, c, a), "vertex");
        assert!(!in_triangle(a, b, c, Point::from_grid(3, 3)));
    }

    #[test]
    fn no_overflow_at_super_triangle_scale() {
        // Super-triangle vertices live a few units outside the grid square.
        let far = 4 * (1i64 << 26);
        let a = Point::from_grid(-far, -far);
        let b = Point::from_grid(far, -far);
        let c = Point::from_grid(0, far);
        let d = Point::from_grid(1, 1);
        assert_eq!(orient2d_sign(a, b, c), 1);
        assert_eq!(incircle(a, b, c, d), 1, "interior point is inside");
    }
}
