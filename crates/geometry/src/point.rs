//! Grid-snapped points.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Bits of the coordinate grid: coordinates are multiples of `2^-GRID_BITS`.
pub const GRID_BITS: u32 = 26;

/// Grid resolution (`2^GRID_BITS` cells per unit).
pub const GRID_SCALE: f64 = (1u64 << GRID_BITS) as f64;

/// A 2-D point whose coordinates are exact multiples of `2^-26`.
///
/// The invariant makes [`crate::predicates`] exact: `to_grid` coordinates are
/// integers with at most ~28 significant bits (the working domain spans a few
/// units around the unit square), so predicate determinants fit in `i128`.
///
/// # Example
///
/// ```
/// use galois_geometry::Point;
/// let p = Point::snapped(0.1234567890123, 0.5);
/// let (gx, gy) = p.to_grid();
/// assert_eq!(gx as f64 / galois_geometry::point::GRID_SCALE, p.x());
/// assert_eq!(gy, (0.5 * galois_geometry::point::GRID_SCALE) as i64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    // Stored as grid integers; `x`/`y` accessors give the f64 view. Ordering
    // derives lexicographically on (gx, gy), used for canonical output forms.
    gx: i64,
    gy: i64,
}

#[allow(clippy::len_without_is_empty)]
impl Point {
    /// Snaps `(x, y)` to the grid (round to nearest).
    pub fn snapped(x: f64, y: f64) -> Self {
        Point {
            gx: (x * GRID_SCALE).round() as i64,
            gy: (y * GRID_SCALE).round() as i64,
        }
    }

    /// Builds a point directly from grid coordinates.
    pub fn from_grid(gx: i64, gy: i64) -> Self {
        Point { gx, gy }
    }

    /// Grid coordinates (exact integers).
    pub fn to_grid(self) -> (i64, i64) {
        (self.gx, self.gy)
    }

    /// The x coordinate as `f64` (exact).
    pub fn x(self) -> f64 {
        self.gx as f64 / GRID_SCALE
    }

    /// The y coordinate as `f64` (exact).
    pub fn y(self) -> f64 {
        self.gy as f64 / GRID_SCALE
    }

    /// Squared Euclidean distance to `other`, in grid units (exact for
    /// points within the working domain).
    pub fn dist2_grid(self, other: Point) -> i128 {
        let dx = (self.gx - other.gx) as i128;
        let dy = (self.gy - other.gy) as i128;
        dx * dx + dy * dy
    }

    /// Z-order (Morton) code of the point, used by BRIO rounds. Coordinates
    /// outside `[0, 2^26)` are clamped.
    pub fn morton(self) -> u64 {
        fn spread(mut v: u64) -> u64 {
            v &= (1 << 26) - 1;
            v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
            v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
            v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
            v = (v | (v << 2)) & 0x3333_3333_3333_3333;
            v = (v | (v << 1)) & 0x5555_5555_5555_5555;
            v
        }
        let cx = self.gx.clamp(0, (1 << 26) - 1) as u64;
        let cy = self.gy.clamp(0, (1 << 26) - 1) as u64;
        spread(cx) | (spread(cy) << 1)
    }
}

/// A `Point` paired with its `x`/`y` view, convenient for printing.
impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.8}, {:.8})", self.x(), self.y())
    }
}

/// Generates `n` distinct random points in the unit square, snapped to the
/// grid, deterministically in `seed` (the paper's dt/dmr inputs, §4.2).
pub fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::from_grid(
            rng.random_range(0..(1i64 << GRID_BITS)),
            rng.random_range(0..(1i64 << GRID_BITS)),
        );
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapping_is_exact_roundtrip() {
        let p = Point::snapped(0.333333333333, 0.77777777);
        let q = Point::snapped(p.x(), p.y());
        assert_eq!(p, q, "snapped coordinates are fixed points of snapping");
    }

    #[test]
    fn grid_coordinates_are_integers() {
        let p = Point::snapped(0.5, 0.25);
        assert_eq!(p.to_grid(), (1 << 25, 1 << 24));
    }

    #[test]
    fn random_points_distinct_and_deterministic() {
        let a = random_points(1000, 9);
        let b = random_points(1000, 9);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
        for p in &a {
            assert!((0.0..1.0).contains(&p.x()));
            assert!((0.0..1.0).contains(&p.y()));
        }
    }

    #[test]
    fn morton_orders_quadrants() {
        let half = 1i64 << 25;
        let sw = Point::from_grid(0, 0);
        let se = Point::from_grid(half, 0);
        let nw = Point::from_grid(0, half);
        let ne = Point::from_grid(half, half);
        let mut v = [ne, sw, nw, se];
        v.sort_by_key(|p| p.morton());
        assert_eq!(v, [sw, se, nw, ne]);
    }

    #[test]
    fn dist2_exact() {
        let a = Point::from_grid(0, 0);
        let b = Point::from_grid(3, 4);
        assert_eq!(a.dist2_grid(b), 25);
    }
}
