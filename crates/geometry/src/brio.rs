//! Biased randomized insertion order (BRIO).
//!
//! The Lonestar Delaunay triangulation reorders points online with BRIO
//! (Amenta, Choi, Rote): points are assigned to rounds by repeatedly
//! flipping a fair coin (round sizes roughly double), and each round is
//! sorted along a space-filling curve. The order combines the O(n log n)
//! expected behaviour of random insertion with spatial locality within
//! rounds (§4.1 of the paper).

use crate::point::Point;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Returns the indices of `points` in BRIO order, deterministically in
/// `seed`.
///
/// # Example
///
/// ```
/// use galois_geometry::{brio, point::random_points};
/// let pts = random_points(100, 1);
/// let order = brio::brio_order(&pts, 42);
/// let mut sorted = order.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "a permutation");
/// ```
pub fn brio_order(points: &[Point], seed: u64) -> Vec<usize> {
    let n = points.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Biased coin: each point lands in the last round with p=1/2, the
    // one before with p=1/4, ... so later rounds are exponentially larger.
    let mut round_of: Vec<u32> = Vec::with_capacity(n);
    let max_round = (usize::BITS - n.leading_zeros()).max(1);
    for _ in 0..n {
        let mut r = max_round;
        while r > 0 && rng.random_range(0..2u32) == 0 {
            r -= 1;
        }
        round_of.push(r);
    }
    let mut idx: Vec<usize> = (0..n).collect();
    // Sort by (round, morton) — stable order, deterministic.
    idx.sort_by_key(|&i| (round_of[i], points[i].morton(), i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::random_points;

    #[test]
    fn deterministic_in_seed() {
        let pts = random_points(500, 7);
        assert_eq!(brio_order(&pts, 1), brio_order(&pts, 1));
        assert_ne!(brio_order(&pts, 1), brio_order(&pts, 2));
    }

    #[test]
    fn rounds_grow_and_are_locally_sorted() {
        let pts = random_points(2000, 7);
        let order = brio_order(&pts, 3);
        // Later positions should predominantly be later rounds; check the
        // coarse property that the last half contains at least half of all
        // points whose morton ordering is locally monotone in stretches.
        let mut monotone_pairs = 0;
        let mut total_pairs = 0;
        for w in order.windows(2) {
            total_pairs += 1;
            if pts[w[0]].morton() <= pts[w[1]].morton() {
                monotone_pairs += 1;
            }
        }
        // Within rounds the order is exactly morton-sorted, so a large
        // majority of adjacent pairs are monotone.
        assert!(
            monotone_pairs * 10 >= total_pairs * 8,
            "{monotone_pairs}/{total_pairs}"
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(brio_order(&[], 1).is_empty());
        let one = random_points(1, 1);
        assert_eq!(brio_order(&one, 1), vec![0]);
    }
}
