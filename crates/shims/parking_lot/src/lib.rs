//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface this
//! workspace uses: non-poisoning [`Mutex::lock`], [`Mutex::try_lock`]
//! returning `Option`, [`Mutex::into_inner`] without a `Result`, and a
//! [`Condvar`] whose `wait` takes the guard by `&mut`. Poisoned locks are
//! recovered transparently (parking_lot has no poisoning at all).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back while
    // the caller keeps holding `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard stolen during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard stolen during wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard stolen during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_try_lock_into_inner() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must not be re-entered");
        }
        assert_eq!(*m.try_lock().expect("free lock"), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
