//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of `rand` the repository actually uses is reimplemented here:
//! [`rngs::SmallRng`] (an xorshift64*-based generator seeded through
//! SplitMix64), [`SeedableRng::seed_from_u64`], [`RngExt::random`] /
//! [`RngExt::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generators are deterministic functions of the seed — exactly the
//! property the deterministic-Galois test suite and input generators rely
//! on — but make no statistical-quality or stability promises beyond this
//! workspace.

#![warn(missing_docs)]

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Minimal core RNG interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xorshift64* over a SplitMix64-mixed
    /// seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer: spreads low-entropy seeds (0, 1, ...)
            // across the whole state space and never yields state 0.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (the `SampleRange` of real `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value from the `Standard` distribution of its type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    //! Sequence-related sampling.

    use super::{RngCore, RngExt};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place, uniformly over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(0..17);
            assert!(v < 17);
            let w: i64 = rng.random_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.random_range(10.0..200.0);
            assert!((10.0..200.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let run = |seed| {
            let mut v: Vec<u32> = (0..64).collect();
            v.shuffle(&mut SmallRng::seed_from_u64(seed));
            v
        };
        let a = run(9);
        assert_eq!(a, run(9));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(a, sorted, "64 elements should not shuffle to identity");
    }
}
