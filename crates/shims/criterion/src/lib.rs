//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`]
//! builder methods, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize::SmallInput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple median-of-samples timer
//! instead of criterion's full statistics engine.
//!
//! Each benchmark prints `name  time: [median ns/iter]`, and when the
//! `CRITERION_JSON` environment variable names a file, appends one JSON
//! line per benchmark (`name`, `median_ns`, `mean_ns`, `samples`) so
//! baselines can be recorded from scripts.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to create; batch them finely.
    SmallInput,
    /// Inputs are expensive; batch coarsely.
    LargeInput,
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` as the benchmark `name` and reports its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Timing context passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called in a loop; reports ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).max(1);

        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    std::hint::black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once to touch code and caches.
        let warm_start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                t.elapsed().as_nanos() as f64
            })
            .collect();
    }

    fn report(&self, name: &str) {
        let mut s = self.samples_ns.clone();
        assert!(!s.is_empty(), "benchmark {name} recorded no samples");
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{name:<48} time: [{median:14.1} ns/iter]  (mean {mean:.1}, n={})",
            s.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            use std::io::Write;
            let line = format!(
                "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{}}}\n",
                s.len()
            );
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// Defines a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn iter_records_positive_samples() {
        let mut c = fast_criterion();
        c.bench_function("shim/iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = fast_criterion();
        c.bench_function("shim/iter_batched", |b| {
            b.iter_batched(
                || (0..64u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn group_and_main_macros_expand() {
        fn target(c: &mut Criterion) {
            c.bench_function("shim/macro", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(
            name = g;
            config = fast_criterion();
            targets = target
        );
        g();
    }
}
