//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: integer-range
//! and tuple strategies, `collection::{vec, btree_set}`, `prop_map`, the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! [`ProptestConfig::with_cases`], and the `prop_assert!` family.
//!
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce exactly. There is no shrinking: a failing case reports the
//! case index and panics.

#![warn(missing_docs)]

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator for `test_name`, case `case`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x9E37_79B9),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec`s with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with cardinality drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `BTreeSet`s of `element` values with a target cardinality
    /// in `size`. Like real proptest, duplicates are retried (bounded), so
    /// the set can come out smaller than the target on tiny domains.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 64 + 64 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Failure of a single generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), a
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = result {
                    panic!("proptest case {case}/{} failed:\n{msg}", config.cases);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn samples_are_deterministic_per_case() {
        let draw = || {
            let mut rng = TestRng::for_case("t", 3);
            crate::collection::vec(0u64..100, 1..20).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut rng = TestRng::for_case("s", 0);
        for _ in 0..100 {
            let s = crate::collection::btree_set((1i64..1023, 1i64..1023), 1..50).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_generates_inputs(
            xs in crate::collection::vec(0u32..10, 0..30),
            k in 1usize..5,
        ) {
            prop_assert!(xs.len() < 30);
            prop_assert!(k >= 1 && k < 5);
            for x in &xs {
                prop_assert!(*x < 10, "x = {x} out of range");
            }
            prop_assert_eq!(k, k);
            prop_assert_ne!(k, k + 1);
        }

        fn mapped_strategy_applies_function(
            n in (0u64..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(n % 2 == 0 && n < 100);
        }
    }
}
