//! `galois` — command-line driver for the benchmark applications.
//!
//! Mirrors how the paper's artifact is used: pick an application, an input
//! size, a thread count, and — the point of the paper — a scheduler, on the
//! command line.
//!
//! ```text
//! galois <app> [--variant seq|g-n|g-d|pbbs] [--threads N] [--size N] [--seed N] [--verify]
//!        [--round-log FILE] [--chaos-seed N] [--cache-dir DIR]
//! galois record <app> --out FILE [--threads N] [--size N] [--seed N]
//!        [--chaos-seed N] [--cache-dir DIR]
//! galois replay FILE [--threads N] [--cache-dir DIR]
//!        [--lockstep T1,T2[,..]] [--lockstep-chaos S1,S2[,..]]
//! galois serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
//! galois lockstep FILE --replicas N [--spawn] [--window W] [--threads T1,T2[,..]]
//! galois replicate --join ADDR [--threads N]
//!
//! apps: bfs, mis, dt, dmr, pfp
//! ```
//!
//! Graph inputs are built with the parallel generators on `--threads`
//! threads — byte-identical to a one-thread build at any thread count.
//! `--cache-dir DIR` additionally caches generated graph and flow-network
//! inputs on disk (keyed by generator + parameters + seed), so repeated
//! runs load instead of regenerating.
//!
//! `--round-log FILE` (executor variants only) writes the per-round schedule
//! log as canonical JSONL: for `g-d` the file is byte-identical at any
//! thread count, so two runs can be diffed to find the first divergent
//! round.
//!
//! `--chaos-seed N` (executor variants only) installs a seeded
//! schedule-chaos policy: thread start skew, barrier jitter, shuffled
//! worklist chunk traffic and forced spurious aborts. `g-d` output and
//! round logs must be byte-identical regardless of the seed — that is the
//! invariance the flag exists to stress.
//!
//! `--chaos-panics N` (executor variants only) additionally injects seeded
//! operator panics at the failsafe point, exercising the fault-containment
//! layer; `--max-stalled-rounds N` overrides the stall watchdog threshold.
//! Executor faults map to distinct exit codes: operator panic = 10,
//! stall/livelock = 11, quarantine overflow = 12, replay divergence = 13.
//!
//! `galois record` runs an app deterministically and writes a versioned,
//! checksummed [`RunManifest`] capturing the input identity, executor
//! configuration, per-round hash chain, and final fingerprint. `galois
//! replay FILE` re-executes the manifest — at `--threads N`, which may
//! differ from the recording — and verifies every round hash; the first
//! divergent round is reported with exit code 13. `--lockstep T1,T2[,..]`
//! instead runs N in-process replicas at the given thread counts
//! (optionally with per-replica `--lockstep-chaos` seeds), cross-checking
//! round hashes at every barrier and reporting the first round where any
//! two replicas — or a replica and the recording — disagree.
//!
//! `galois serve` starts the resident compute service (`galois-serve`): a
//! blocking HTTP/1.1+JSON server that keeps inputs warm across requests,
//! quarantines faulting runs into structured error responses, and streams
//! round logs and replayable manifests back to clients. It runs until
//! `POST /shutdown` (or the process is killed).
//!
//! [`RunManifest`]: deterministic_galois::core::RunManifest

use deterministic_galois::apps::{bfs, dmr, dt, mis, mm, pfp};
use deterministic_galois::core::{
    DetOptions, ExecError, Executor, RoundLog, RunReport, Schedule, WorklistPolicy,
};
use deterministic_galois::geometry::point::random_points;
use deterministic_galois::graph::cache::{load_or_build_flow, load_or_build_graph, CacheOutcome};
use deterministic_galois::graph::{gen, CsrGraph, FlowNetwork};
use deterministic_galois::mesh::check;
use std::path::PathBuf;
use std::process::exit;

#[derive(Debug)]
struct Args {
    app: String,
    variant: String,
    threads: usize,
    size: usize,
    seed: u64,
    verify: bool,
    round_log: Option<String>,
    chaos_seed: Option<u64>,
    chaos_panics: Option<u64>,
    max_stalled_rounds: Option<u64>,
    cache_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: galois <bfs|mis|mm|dt|dmr|pfp> [--variant seq|g-n|g-d|pbbs] \
         [--threads N] [--size N] [--seed N] [--verify] [--round-log FILE] \
         [--chaos-seed N] [--chaos-panics N] [--max-stalled-rounds N] \
         [--cache-dir DIR]\n       \
         galois record <app> --out FILE [--threads N] [--size N] [--seed N] \
         [--chaos-seed N] [--cache-dir DIR]\n       \
         galois replay FILE [--threads N] [--cache-dir DIR] \
         [--lockstep T1,T2[,..]] [--lockstep-chaos S1,S2[,..]]\n       \
         galois serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]\n       \
         galois lockstep FILE --replicas N [--spawn] [--window W] \
         [--threads T1,T2[,..]] [--timeout-ms T] [--addr HOST:PORT] \
         [--report FILE] [--emit-manifest FILE] [--perturb i:SPREAD] \
         [--throttle i:MS]\n       \
         galois replicate --join ADDR [--threads N] [--perturb-spread N] \
         [--throttle-ms MS]"
    );
    exit(2);
}

/// Exit code for a verified replay that hashed differently from its
/// manifest (or a lockstep replica pair that disagreed).
const EXIT_DIVERGENCE: i32 = 13;

/// Exit code for a distributed lockstep run the coordinator refused:
/// quorum lost, or a majority contradicted the recorded reference chain.
const EXIT_NO_QUORUM: i32 = 14;

/// `galois record <app> --out FILE ...` — run deterministically, capture a
/// replayable manifest.
fn cmd_record(argv: &[String]) -> ! {
    use deterministic_galois::harness::{record_run, App, InputConfig};
    let mut it = argv.iter().cloned();
    let Some(app) = it.next() else { usage() };
    let Some(app) = App::from_name(&app) else {
        eprintln!("unknown app {app}");
        usage();
    };
    let mut threads = 2usize;
    let mut input = InputConfig::default();
    let mut chaos_seed = None;
    let mut out: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--threads" => val(&mut |v| threads = v.parse().unwrap_or_else(|_| usage())),
            "--size" => val(&mut |v| input.size = Some(v.parse().unwrap_or_else(|_| usage()))),
            "--seed" => val(&mut |v| input.seed = v.parse().unwrap_or_else(|_| usage())),
            "--chaos-seed" => {
                val(&mut |v| chaos_seed = Some(v.parse().unwrap_or_else(|_| usage())))
            }
            "--cache-dir" => val(&mut |v| input.cache_dir = Some(v.into())),
            "--out" => val(&mut |v| out = Some(v.into())),
            _ => usage(),
        }
    }
    let Some(out) = out else {
        eprintln!("record requires --out FILE");
        usage();
    };
    input.build_threads = threads;
    let t0 = std::time::Instant::now();
    let manifest = match record_run(app, threads, chaos_seed, &input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("record failed: {e}");
            exit(1);
        }
    };
    if let Err(e) = manifest.save(&out) {
        eprintln!("{e}");
        exit(1);
    }
    println!(
        "recorded {app} ({}): {} rounds, fingerprint {:016x} -> {} in {:?}",
        manifest.input_key,
        manifest.round_hashes.len(),
        manifest.final_fingerprint,
        out.display(),
        t0.elapsed(),
    );
    exit(0);
}

/// `galois replay FILE ...` — re-execute a manifest and verify every round
/// hash, or cross-check N lockstep replicas.
fn cmd_replay(argv: &[String]) -> ! {
    use deterministic_galois::core::RunManifest;
    use deterministic_galois::harness::{
        replay_run, run_lockstep, unperturbed, LockstepReplica, ReplayError,
    };
    let mut it = argv.iter().cloned();
    let Some(path) = it.next() else { usage() };
    let manifest = match RunManifest::load(path.as_ref()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot load manifest {path}: {e}");
            exit(1);
        }
    };
    let mut threads = manifest.exec.threads;
    let mut cache_dir: Option<PathBuf> = None;
    let mut lockstep: Option<Vec<usize>> = None;
    let mut lockstep_chaos: Vec<u64> = Vec::new();
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--threads" => val(&mut |v| threads = v.parse().unwrap_or_else(|_| usage())),
            "--cache-dir" => val(&mut |v| cache_dir = Some(v.into())),
            "--lockstep" => val(&mut |v| {
                lockstep = Some(
                    v.split(',')
                        .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }),
            "--lockstep-chaos" => val(&mut |v| {
                lockstep_chaos = v
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }),
            _ => usage(),
        }
    }
    let t0 = std::time::Instant::now();
    if let Some(replica_threads) = lockstep {
        if replica_threads.len() < 2 {
            eprintln!("--lockstep needs at least two replica thread counts");
            exit(2);
        }
        let replicas: Vec<LockstepReplica> = replica_threads
            .iter()
            .enumerate()
            .map(|(i, &t)| LockstepReplica {
                threads: t,
                chaos_seed: lockstep_chaos.get(i).copied(),
            })
            .collect();
        let report = match run_lockstep(&manifest, &replicas, &unperturbed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lockstep failed: {e}");
                exit(1);
            }
        };
        for (i, (replica, verdict)) in replicas
            .iter()
            .zip(&report.manifest_divergences)
            .enumerate()
        {
            match verdict {
                None => println!(
                    "  replica {i} (threads {}): reproduced the recording",
                    replica.threads
                ),
                Some(d) => println!("  replica {i} (threads {}): {d}", replica.threads),
            }
        }
        if report.all_agree() {
            println!(
                "lockstep ok: {} replicas agreed on all {} rounds in {:?}",
                report.replicas,
                report.rounds,
                t0.elapsed(),
            );
            exit(0);
        }
        if let Some(d) = report.divergence {
            eprintln!("lockstep DIVERGED: {d}");
        } else {
            eprintln!("lockstep DIVERGED from the recording (replica verdicts above)");
        }
        exit(EXIT_DIVERGENCE);
    }
    match replay_run(&manifest, threads, cache_dir) {
        Ok(out) => {
            println!(
                "replay ok: {} at {threads} threads, {} rounds, fingerprint {:016x} \
                 matches the recording in {:?}",
                manifest.app,
                out.rounds,
                out.fingerprint,
                t0.elapsed(),
            );
            exit(0);
        }
        Err(ReplayError::Divergence(d)) => {
            eprintln!("replay DIVERGED: {d}");
            exit(EXIT_DIVERGENCE);
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            exit(1);
        }
    }
}

/// `galois serve ...` — run the resident compute service until shutdown.
fn cmd_serve(argv: &[String]) -> ! {
    use deterministic_galois::serve::{ServeConfig, Server};
    let mut config = ServeConfig {
        addr: "127.0.0.1:7423".to_string(),
        ..ServeConfig::default()
    };
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--addr" => val(&mut |v| config.addr = v),
            "--workers" => val(&mut |v| config.workers = v.parse().unwrap_or_else(|_| usage())),
            "--cache-dir" => val(&mut |v| config.cache_dir = Some(v.into())),
            _ => usage(),
        }
    }
    if config.workers == 0 {
        eprintln!("--workers must be positive");
        exit(2);
    }
    let handle = match Server::start(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", config.addr);
            exit(1);
        }
    };
    println!(
        "galois-serve listening on {} ({} workers, cache {})",
        handle.addr(),
        config.workers,
        config
            .cache_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".to_string()),
    );
    handle.wait();
    println!("galois-serve stopped");
    exit(0);
}

/// `galois replicate --join ADDR ...` — join a lockstep coordinator, re-run
/// its job, and stream per-round prefix hashes back over the wire.
fn cmd_replicate(argv: &[String]) -> ! {
    use deterministic_galois::serve::lockstep::{run_replica, ReplicaOptions};
    let mut it = argv.iter().cloned();
    let mut join: Option<String> = None;
    let mut opts = ReplicaOptions::default();
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--join" => val(&mut |v| join = Some(v)),
            "--threads" => val(&mut |v| opts.threads = Some(v.parse().unwrap_or_else(|_| usage()))),
            "--perturb-spread" => val(&mut |v| {
                opts.perturb_spread = Some(v.parse().unwrap_or_else(|_| usage()));
            }),
            "--throttle-ms" => {
                val(&mut |v| opts.throttle_ms = v.parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    let Some(addr) = join else {
        eprintln!("replicate requires --join ADDR");
        usage();
    };
    match run_replica(&addr, opts) {
        Ok(code) => exit(code),
        Err(e) => {
            eprintln!("replicate failed: {e}");
            exit(1);
        }
    }
}

/// `galois lockstep FILE ...` — coordinate N replica processes re-executing
/// a recorded manifest, cross-checking per-round hashes over the wire.
fn cmd_lockstep(argv: &[String]) -> ! {
    use deterministic_galois::core::RunManifest;
    use deterministic_galois::serve::lockstep::{Coordinator, LockstepConfig};
    use std::process::{Child, Command, Stdio};
    use std::time::Duration;
    let mut it = argv.iter().cloned();
    let Some(path) = it.next() else { usage() };
    let manifest = match RunManifest::load(path.as_ref()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot load manifest {path}: {e}");
            exit(1);
        }
    };
    let mut config = LockstepConfig::default();
    let mut spawn = false;
    let mut addr = "127.0.0.1:0".to_string();
    let mut report_path: Option<PathBuf> = None;
    let mut emit_manifest: Option<PathBuf> = None;
    // Per-replica-index overrides, "i:VALUE" pairs.
    let mut perturb: Vec<(usize, usize)> = Vec::new();
    let mut throttle: Vec<(usize, u64)> = Vec::new();
    let parse_pair = |v: &str| -> Option<(usize, u64)> {
        let (i, x) = v.split_once(':')?;
        Some((i.trim().parse().ok()?, x.trim().parse().ok()?))
    };
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--replicas" => val(&mut |v| config.replicas = v.parse().unwrap_or_else(|_| usage())),
            "--window" => val(&mut |v| config.window = v.parse().unwrap_or_else(|_| usage())),
            "--threads" => val(&mut |v| {
                config.threads = v
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }),
            "--timeout-ms" => val(&mut |v| {
                config.timeout = Duration::from_millis(v.parse().unwrap_or_else(|_| usage()));
            }),
            "--spawn" => spawn = true,
            "--addr" => val(&mut |v| addr = v),
            "--report" => val(&mut |v| report_path = Some(v.into())),
            "--emit-manifest" => val(&mut |v| emit_manifest = Some(v.into())),
            "--perturb" => val(&mut |v| {
                let Some((i, s)) = parse_pair(&v) else {
                    usage()
                };
                perturb.push((i, s as usize));
            }),
            "--throttle" => val(&mut |v| {
                let Some((i, ms)) = parse_pair(&v) else {
                    usage()
                };
                throttle.push((i, ms));
            }),
            _ => usage(),
        }
    }
    if config.replicas == 0 {
        eprintln!("--replicas must be positive");
        exit(2);
    }
    let manifest_text = manifest.to_json();
    let coordinator = match Coordinator::bind(manifest, config.clone(), &addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let bound = coordinator.addr();
    println!(
        "lockstep coordinator on {bound} awaiting {} replicas",
        config.replicas
    );
    let mut children: Vec<Child> = Vec::new();
    if spawn {
        let bin = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("cannot find own binary: {e}");
            exit(1);
        });
        for i in 0..config.replicas {
            let mut cmd = Command::new(&bin);
            cmd.arg("replicate").arg("--join").arg(bound.to_string());
            if let Some(&(_, s)) = perturb.iter().find(|&&(j, _)| j == i) {
                cmd.arg("--perturb-spread").arg(s.to_string());
            }
            if let Some(&(_, ms)) = throttle.iter().find(|&&(j, _)| j == i) {
                cmd.arg("--throttle-ms").arg(ms.to_string());
            }
            cmd.stdin(Stdio::null());
            match cmd.spawn() {
                Ok(child) => children.push(child),
                Err(e) => {
                    eprintln!("cannot spawn replica {i}: {e}");
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    exit(1);
                }
            }
        }
    }
    let result = coordinator.run();
    for mut c in children {
        let _ = c.kill();
        let _ = c.wait();
    }
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lockstep failed: {e}");
            exit(1);
        }
    };
    for event in &result.report.events {
        eprintln!(
            "  [{}] round {} replica {}: {}",
            event.kind.name(),
            event.round,
            event
                .replica
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".to_string()),
            event.detail,
        );
    }
    if let Some(out) = report_path {
        if let Err(e) = result.report.save(&out) {
            eprintln!("cannot write report: {e}");
            exit(1);
        }
    }
    match result.exit_code {
        0 => println!(
            "lockstep ok: {} replicas agreed on all {} rounds, fingerprint {:016x}",
            result.report.replicas, result.report.rounds, result.report.final_fingerprint,
        ),
        EXIT_DIVERGENCE => eprintln!(
            "lockstep DIVERGED: survivors {:?} agreed, fingerprint {:016x}",
            result.report.survivors, result.report.final_fingerprint,
        ),
        _ => eprintln!("lockstep REFUSED: no quorum (see events above)"),
    }
    if result.exit_code != EXIT_NO_QUORUM {
        if let Some(out) = emit_manifest {
            if let Err(e) = std::fs::write(&out, &manifest_text) {
                eprintln!("cannot emit manifest: {e}");
                exit(1);
            }
        }
    }
    exit(result.exit_code);
}

fn parse_args() -> Args {
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match argv.first().map(String::as_str) {
            Some("record") => cmd_record(&argv[1..]),
            Some("replay") => cmd_replay(&argv[1..]),
            Some("serve") => cmd_serve(&argv[1..]),
            Some("replicate") => cmd_replicate(&argv[1..]),
            Some("lockstep") => cmd_lockstep(&argv[1..]),
            _ => {}
        }
    }
    let mut args = Args {
        app: String::new(),
        variant: "g-d".into(),
        threads: 2,
        size: 0,
        seed: 42,
        verify: false,
        round_log: None,
        chaos_seed: None,
        chaos_panics: None,
        max_stalled_rounds: None,
        cache_dir: None,
    };
    let mut it = std::env::args().skip(1);
    let Some(app) = it.next() else { usage() };
    args.app = app;
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--variant" => val(&mut |v| args.variant = v),
            "--threads" => val(&mut |v| args.threads = v.parse().unwrap_or_else(|_| usage())),
            "--size" => val(&mut |v| args.size = v.parse().unwrap_or_else(|_| usage())),
            "--seed" => val(&mut |v| args.seed = v.parse().unwrap_or_else(|_| usage())),
            "--verify" => args.verify = true,
            "--round-log" => val(&mut |v| args.round_log = Some(v)),
            "--chaos-seed" => {
                val(&mut |v| args.chaos_seed = Some(v.parse().unwrap_or_else(|_| usage())))
            }
            "--chaos-panics" => {
                val(&mut |v| args.chaos_panics = Some(v.parse().unwrap_or_else(|_| usage())))
            }
            "--max-stalled-rounds" => val(&mut |v| {
                args.max_stalled_rounds = Some(v.parse().unwrap_or_else(|_| usage()));
            }),
            "--cache-dir" => val(&mut |v| args.cache_dir = Some(v.into())),
            _ => usage(),
        }
    }
    args
}

fn executor(args: &Args, spread: usize, fifo: bool) -> Executor {
    let schedule = match args.variant.as_str() {
        "seq" => Schedule::Serial,
        "g-n" => Schedule::Speculative,
        "g-d" => Schedule::Deterministic(DetOptions {
            locality_spread: spread,
            ..Default::default()
        }),
        other => {
            eprintln!("variant {other} is not executor-based here");
            exit(2);
        }
    };
    let mut exec = Executor::new()
        .threads(args.threads)
        .schedule(schedule)
        .worklist(if fifo {
            WorklistPolicy::Fifo
        } else {
            WorklistPolicy::Lifo
        })
        .record_rounds(args.round_log.is_some());
    if let Some(seed) = args.chaos_seed {
        exec = exec.chaos(seed);
    }
    if let Some(seed) = args.chaos_panics {
        exec = exec.chaos_panics(seed);
    }
    if let Some(rounds) = args.max_stalled_rounds {
        exec = exec.max_stalled_rounds(rounds);
    }
    exec
}

/// Reports an executor fault and exits with its distinct code
/// (operator panic = 10, stall = 11, quarantine overflow = 12).
fn fault_exit(err: ExecError) -> ! {
    eprintln!("fault: {err}");
    exit(err.exit_code());
}

/// Builds (or loads from `--cache-dir`) a graph input with the parallel
/// generators on `--threads` threads, reporting where it came from.
fn input_graph(args: &Args, key: String, build: impl FnOnce() -> CsrGraph) -> CsrGraph {
    let t0 = std::time::Instant::now();
    let (g, cached) = load_or_build_graph(args.cache_dir.as_deref(), &key, build);
    report_input(&key, cached, t0);
    g
}

/// Flow-network counterpart of [`input_graph`].
fn input_flow(args: &Args, key: String, build: impl FnOnce() -> FlowNetwork) -> FlowNetwork {
    let t0 = std::time::Instant::now();
    let (net, cached) = load_or_build_flow(args.cache_dir.as_deref(), &key, build);
    report_input(&key, cached, t0);
    net
}

fn report_input(key: &str, cached: CacheOutcome, t0: std::time::Instant) {
    if cached != CacheOutcome::Disabled {
        println!("input {key}: cache {cached} in {:?}", t0.elapsed());
    }
}

/// Extracts a run's round log (if `--round-log` asked for one) and returns
/// the stats line to print.
fn finish_report(args: &Args, report: &mut RunReport) -> String {
    if args.round_log.is_some() {
        write_round_log(args, report.take_round_log().into_iter().collect());
    }
    report.stats.to_string()
}

/// Writes the canonical JSONL round log, renumbering rounds across
/// multi-pass runs (pfp bouts) into one monotone sequence.
fn write_round_log(args: &Args, logs: Vec<RoundLog>) {
    let Some(path) = &args.round_log else { return };
    let mut out = String::new();
    let mut next = 0u64;
    for log in logs {
        for mut rec in log.into_records() {
            rec.round = next;
            next += 1;
            out.push_str(&rec.canonical_json());
            out.push('\n');
        }
    }
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("cannot write round log {path}: {e}");
        exit(1);
    }
    println!("round log: {next} rounds -> {path}");
}

fn main() {
    let args = parse_args();
    if args.round_log.is_some() && !matches!(args.variant.as_str(), "g-d" | "g-n") {
        eprintln!("--round-log requires an executor variant (g-d or g-n)");
        exit(2);
    }
    if args.chaos_seed.is_some() && !matches!(args.variant.as_str(), "g-d" | "g-n") {
        eprintln!("--chaos-seed requires an executor variant (g-d or g-n)");
        exit(2);
    }
    if args.chaos_panics.is_some() && !matches!(args.variant.as_str(), "g-d" | "g-n") {
        eprintln!("--chaos-panics requires an executor variant (g-d or g-n)");
        exit(2);
    }
    if args.max_stalled_rounds == Some(0) {
        eprintln!("--max-stalled-rounds must be positive");
        exit(2);
    }
    let t0 = std::time::Instant::now();
    match args.app.as_str() {
        "bfs" => {
            let n = if args.size == 0 { 200_000 } else { args.size };
            let g = input_graph(&args, format!("uniform-n{n}-d5-s{}", args.seed), || {
                gen::uniform_random_parallel(n, 5, args.seed, args.threads)
            });
            println!("bfs: {n} nodes x 5 edges, variant {}", args.variant);
            let (dist, stats) = match args.variant.as_str() {
                "pbbs" => {
                    let (d, _, s) = bfs::pbbs(&g, 0, args.threads, false);
                    (
                        d,
                        format!("rounds={} atomics={}", s.rounds, s.atomic_updates),
                    )
                }
                _ => {
                    let exec = executor(&args, 1, true);
                    let (d, mut r) =
                        bfs::try_galois(&g, 0, &exec).unwrap_or_else(|e| fault_exit(e));
                    let stats = finish_report(&args, &mut r);
                    (d, stats)
                }
            };
            println!("done in {:?} ({stats})", t0.elapsed());
            if args.verify {
                bfs::verify(&g, 0, &dist).expect("bfs verification");
                println!("verified: distances exact");
            }
        }
        "mis" => {
            let n = if args.size == 0 { 200_000 } else { args.size };
            let g = input_graph(&args, format!("uniform-und-n{n}-d4-s{}", args.seed), || {
                gen::uniform_random_undirected_parallel(n, 4, args.seed, args.threads)
            });
            println!("mis: {n} nodes, variant {}", args.variant);
            let (flags, stats) = match args.variant.as_str() {
                "pbbs" => {
                    let (f, s) = mis::pbbs(&g, args.threads, false);
                    (f, format!("rounds={} committed={}", s.rounds, s.committed))
                }
                _ => {
                    let exec = executor(&args, 1, false);
                    let (f, mut r) = mis::try_galois(&g, &exec).unwrap_or_else(|e| fault_exit(e));
                    let stats = finish_report(&args, &mut r);
                    (f, stats)
                }
            };
            let in_count = flags.iter().filter(|&&f| f == mis::state::IN).count();
            println!("done in {:?}: |MIS| = {in_count} ({stats})", t0.elapsed());
            if args.verify {
                mis::verify(&g, &flags).expect("mis verification");
                println!("verified: independent and maximal");
            }
        }
        "dt" => {
            let n = if args.size == 0 { 25_000 } else { args.size };
            let pts = random_points(n, args.seed);
            println!("dt: {n} points, variant {}", args.variant);
            let (mesh, stats) = match args.variant.as_str() {
                "pbbs" => {
                    let (m, s) = dt::pbbs(&pts, args.seed, args.threads, false);
                    (m, format!("rounds={} aborted={}", s.rounds, s.aborted))
                }
                "seq" => (dt::seq(&pts, args.seed), "sequential".to_string()),
                _ => {
                    let exec = executor(&args, 16, false);
                    let (m, mut r) =
                        dt::try_galois(&pts, args.seed, &exec).unwrap_or_else(|e| fault_exit(e));
                    let stats = finish_report(&args, &mut r);
                    (m, stats)
                }
            };
            println!(
                "done in {:?}: {} triangles ({stats})",
                t0.elapsed(),
                mesh.num_tris_alive()
            );
            if args.verify {
                check::validate(&mesh).expect("structure");
                check::check_delaunay(&mesh).expect("Delaunay property");
                println!("verified: valid Delaunay triangulation");
            }
        }
        "dmr" => {
            let n = if args.size == 0 { 3_000 } else { args.size };
            println!("dmr: mesh of {n} points, variant {}", args.variant);
            let mesh = dmr::make_input(n, args.seed);
            let before = check::quality(&mesh);
            let stats = match args.variant.as_str() {
                "pbbs" => {
                    let s = dmr::pbbs(&mesh, args.threads, false);
                    format!("rounds={} committed={}", s.rounds, s.committed)
                }
                _ => {
                    let exec = executor(&args, 16, false);
                    let mut r = dmr::try_galois(&mesh, &exec).unwrap_or_else(|e| fault_exit(e));
                    finish_report(&args, &mut r)
                }
            };
            let after = check::quality(&mesh);
            println!(
                "done in {:?}: {} -> {} triangles, bad {} -> {} ({stats})",
                t0.elapsed(),
                before.triangles,
                after.triangles,
                before.bad,
                after.bad
            );
            if args.verify {
                check::validate(&mesh).expect("structure");
                check::check_delaunay(&mesh).expect("Delaunay property");
                assert_eq!(after.bad, 0);
                println!("verified: conforming refined Delaunay mesh");
            }
        }
        "mm" => {
            let n = if args.size == 0 { 200_000 } else { args.size };
            let g = input_graph(&args, format!("uniform-und-n{n}-d4-s{}", args.seed), || {
                gen::uniform_random_undirected_parallel(n, 4, args.seed, args.threads)
            });
            println!("mm: {n} nodes, variant {}", args.variant);
            let (mate, stats) = match args.variant.as_str() {
                "seq" => (mm::seq(&g), "sequential".to_string()),
                "pbbs" => {
                    let (m, s) = mm::pbbs(&g, args.threads, false);
                    (m, format!("rounds={} committed={}", s.rounds, s.committed))
                }
                _ => {
                    let exec = executor(&args, 1, false);
                    let (m, mut r) = mm::try_galois(&g, &exec).unwrap_or_else(|e| fault_exit(e));
                    let stats = finish_report(&args, &mut r);
                    (m, stats)
                }
            };
            let matched = mate.iter().filter(|&&m| m != mm::UNMATCHED).count() / 2;
            println!("done in {:?}: |M| = {matched} ({stats})", t0.elapsed());
            if args.verify {
                mm::verify(&g, &mate).expect("matching verification");
                println!("verified: valid maximal matching");
            }
        }
        "pfp" => {
            let n = if args.size == 0 { 8_192 } else { args.size };
            let net = input_flow(
                &args,
                format!("flowrand-n{n}-d4-c1000-s{}", args.seed),
                || FlowNetwork::random_parallel(n, 4, 1_000, args.seed, args.threads),
            );
            println!("pfp: {n} nodes x 4 edges, variant {}", args.variant);
            let (flow, stats) = match args.variant.as_str() {
                "seq" => {
                    let (f, s) = pfp::seq(&net);
                    (f, format!("pushes={} relabels={}", s.pushes, s.relabels))
                }
                "pbbs" => {
                    eprintln!("pfp has no PBBS variant (§4.1)");
                    exit(2);
                }
                _ => {
                    let exec = executor(&args, 1, true);
                    let (f, mut r) = pfp::try_galois(&net, &exec).unwrap_or_else(|e| fault_exit(e));
                    if args.round_log.is_some() {
                        let logs = r
                            .reports
                            .iter_mut()
                            .filter_map(|b| b.take_round_log())
                            .collect();
                        write_round_log(&args, logs);
                    }
                    (f, format!("bouts={} {}", r.bouts, r.stats))
                }
            };
            println!("done in {:?}: max flow = {flow} ({stats})", t0.elapsed());
            if args.verify {
                net.verify_flow().expect("flow conservation");
                println!("verified: valid flow assignment");
            }
        }
        _ => usage(),
    }
}
