//! # Deterministic Galois: on-demand, portable, parameterless
//!
//! Umbrella crate for the reproduction of *"Deterministic Galois:
//! On-demand, Portable and Parameterless"* (Nguyen, Lenharth, Pingali —
//! ASPLOS 2014). It re-exports the workspace crates:
//!
//! | module | crate | content |
//! |--------|-------|---------|
//! | [`core`] | `galois-core` | the Galois programming model and the speculative / DIG schedulers |
//! | [`runtime`] | `galois-runtime` | thread pool, barriers, work bags, virtual-time model |
//! | [`graph`] | `galois-graph` | CSR graphs, generators, flow networks |
//! | [`geometry`] | `galois-geometry` | exact predicates, BRIO, triangle math |
//! | [`mesh`] | `galois-mesh` | concurrent triangle mesh, cavities, checkers |
//! | [`pbbs`] | `pbbs-det` | deterministic reservations, priority writes |
//! | [`apps`] | `galois-apps` | bfs, mis, dt, dmr, pfp in all paper variants |
//! | [`serve`] | `galois-serve` | resident compute service: HTTP front end, warm inputs, fault quarantine |
//! | [`coredet`] | `coredet-sim` | the CoreDet comparison system |
//! | [`cachesim`] | `cache-sim` | the locality-study cache model |
//!
//! ## Quickstart
//!
//! ```
//! use deterministic_galois::core::{Ctx, Executor, MarkTable, OpResult, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Sum each value into one of 8 buckets, under abstract per-bucket locks.
//! let buckets: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
//! let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
//!     let b = (*t % 8) as u32;
//!     ctx.acquire(b)?;
//!     ctx.failsafe()?;
//!     let cur = buckets[b as usize].load(Ordering::Relaxed);
//!     buckets[b as usize].store(cur + *t, Ordering::Relaxed);
//!     Ok(())
//! };
//! let marks = MarkTable::new(8);
//! // The scheduler is a run-time switch: Speculative or Deterministic.
//! let report = Executor::new()
//!     .threads(2)
//!     .schedule(Schedule::deterministic())
//!     .iterate((0..1000).collect())
//!     .run(&marks, &op);
//! assert_eq!(report.stats.committed, 1000);
//! ```
//!
//! See `examples/` for runnable end-to-end programs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use cache_sim as cachesim;
pub use coredet_sim as coredet;
pub use galois_apps as apps;
pub use galois_core as core;
pub use galois_geometry as geometry;
pub use galois_graph as graph;
pub use galois_harness as harness;
pub use galois_mesh as mesh;
pub use galois_runtime as runtime;
pub use galois_serve as serve;
pub use pbbs_det as pbbs;
