//! Why determinism: reproducible debugging.
//!
//! The paper's opening motivation is that non-determinism makes debugging
//! difficult. This example stages that story with an *order-sensitive*
//! operator: each task folds its id into its cell with a non-commutative
//! update, so the final state depends on the order in which conflicting
//! tasks committed — the classic "results differ run to run" situation.
//!
//! - speculatively, the checksum typically changes between runs and thread
//!   counts: a heisenbug hunt;
//! - deterministically, every run — at any thread count — produces the
//!   identical checksum, so a failing outcome reproduces under a debugger
//!   and can be bisected.
//!
//! The deterministic runs also attach a [`RoundLog`] probe: its canonical
//! serialization records exactly what the scheduler did each round (window,
//! commits, which locations caused aborts), and because it is byte-identical
//! across thread counts it doubles as a *portability oracle* — the first
//! differing line between two logs names the round where behavior diverged.
//!
//! Reproducibility extends to *crashes*: in deterministic mode an operator
//! panic is quarantined and reported through `LoopSpec::try_run` as
//! `ExecError::OperatorPanic { task_id, message, round }`, and the panic
//! message itself is canonical — the same task id, round, and message
//! string at any thread count, so a crash found at 16 threads replays
//! exactly under a single-threaded debugger. (Speculative-mode fault
//! reports name whichever fault was observed first and are not canonical.)
//!
//! To carry a run between machines (or CI shards), skip the raw logs and
//! record a *manifest* instead: `galois record <app> --out run.json`
//! captures the input identity, executor config, and a per-round hash
//! chain; `galois replay run.json --threads N` re-executes it anywhere and
//! names the first divergent round (exit code 13) if anything changed.
//! The minimizer workflow composes: point the differential harness's
//! `--manifest DIR` at a sweep, keep the emitted `<app>.manifest.json`
//! artifacts, and a divergence found later shrinks to "replay this
//! manifest" instead of "re-run this whole matrix".
//!
//! ```text
//! cargo run --release --example determinism_debugging
//! ```

use deterministic_galois::core::{Ctx, Executor, MarkTable, OpResult, RoundLog, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};

const CELLS: usize = 16;
const TASKS: u64 = 20_000;

/// Runs the order-sensitive workload and returns its checksum plus the
/// round log's canonical serialization. The operator is properly cautious
/// (it acquires everything it touches); its *output* is still
/// schedule-dependent because the per-cell update does not commute —
/// exactly the kind of program the paper's scheduler makes reproducible on
/// demand.
fn run(schedule: Schedule, threads: usize) -> (u64, String) {
    let cells: Vec<AtomicU64> = (0..CELLS).map(|_| AtomicU64::new(0)).collect();
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        let c = (*t % CELLS as u64) as u32;
        ctx.acquire(c)?;
        ctx.failsafe()?;
        let cell = &cells[c as usize];
        // Non-commutative fold: order of conflicting tasks is visible.
        let prev = cell.load(Ordering::Relaxed);
        cell.store(prev.wrapping_mul(31).wrapping_add(*t), Ordering::Relaxed);
        Ok(())
    };
    let marks = MarkTable::new(CELLS);
    let mut log = RoundLog::new();
    Executor::new()
        .threads(threads)
        .schedule(schedule)
        .iterate((0..TASKS).collect())
        .probe(&mut log)
        .run(&marks, &op);
    let checksum = cells.iter().fold(0u64, |acc, c| {
        acc.rotate_left(7) ^ c.load(Ordering::Relaxed)
    });
    (checksum, log.canonical_jsonl())
}

fn main() {
    println!("hunting an order-sensitive result (non-commutative per-cell fold)\n");

    println!("speculative executor, 4 threads, five runs:");
    let mut spec = Vec::new();
    for i in 0..5 {
        let (sum, _) = run(Schedule::Speculative, 4);
        println!("  run {i}: checksum {sum:#018x}");
        spec.push(sum);
    }
    let spec_stable = spec.windows(2).all(|w| w[0] == w[1]);
    println!("  stable: {spec_stable}   <- typically false: a heisenbug\n");

    println!("deterministic executor, five runs across thread counts:");
    let mut det = Vec::new();
    for (i, threads) in [1usize, 2, 4, 3, 4].into_iter().enumerate() {
        let (sum, log) = run(Schedule::deterministic(), threads);
        println!("  run {i} ({threads} threads): checksum {sum:#018x}");
        det.push((sum, log));
    }
    assert!(
        det.windows(2).all(|w| w[0].0 == w[1].0),
        "deterministic runs must agree"
    );
    println!("  stable: true (guaranteed)\n");

    // The round log is the schedule, serialized: byte-identical across
    // thread counts. Diffing two logs pinpoints the first divergent round —
    // here there is none, by construction.
    let (_, reference_log) = &det[0];
    assert!(
        det.iter().all(|(_, log)| log == reference_log),
        "canonical round logs must be byte-identical across thread counts"
    );
    let rounds = reference_log.lines().count();
    println!("round log: {rounds} rounds, byte-identical at 1/2/3/4 threads;");
    if let Some(first) = reference_log.lines().next() {
        println!("first round record: {first}\n");
    }

    println!(
        "under DIG scheduling the order-sensitive program repeats exactly at\n\
         any thread count, so a bad outcome reproduces on every run and under\n\
         a debugger — the paper's case for on-demand determinism during\n\
         development. The round log turns that into a diffable artifact:\n\
         compare logs from two machines to find the exact round (and the\n\
         exact conflicting locations) where behavior diverged. Flip the\n\
         schedule back to Speculative for production speed once the bug is\n\
         fixed."
    );
}
