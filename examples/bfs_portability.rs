//! BFS under every scheduler, with portability checks.
//!
//! Runs the same data-driven BFS operator (a) speculatively with a FIFO
//! worklist and (b) under deterministic DIG scheduling at several thread
//! counts, verifying distances against a sequential reference and showing
//! that the deterministic schedule statistics are bit-identical at every
//! thread count.
//!
//! ```text
//! cargo run --release --example bfs_portability [nodes]
//! ```

use deterministic_galois::apps::bfs;
use deterministic_galois::core::{Executor, Schedule, WorklistPolicy};
use deterministic_galois::graph::gen;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("random graph: {n} nodes x 5 out-edges");
    let g = gen::uniform_random(n, 5, 42);

    let t0 = std::time::Instant::now();
    let reference = bfs::seq(&g, 0);
    println!("sequential reference: {:?}", t0.elapsed());

    for threads in [1usize, 2, 4] {
        let exec = Executor::new()
            .threads(threads)
            .schedule(Schedule::Speculative)
            .worklist(WorklistPolicy::Fifo);
        let (dist, report) = bfs::galois(&g, 0, &exec);
        assert_eq!(dist, reference, "speculative distances are still exact");
        println!(
            "speculative  t={threads}: {:>10.3?}  committed={} aborted={}",
            report.stats.elapsed, report.stats.committed, report.stats.aborted
        );
    }

    let mut det_signature = None;
    for threads in [1usize, 2, 4] {
        let exec = Executor::new()
            .threads(threads)
            .schedule(Schedule::deterministic());
        let (dist, report) = bfs::galois(&g, 0, &exec);
        assert_eq!(dist, reference);
        let sig = (
            report.stats.committed,
            report.stats.aborted,
            report.stats.rounds,
        );
        println!(
            "deterministic t={threads}: {:>10.3?}  committed={} aborted={} rounds={}",
            report.stats.elapsed, sig.0, sig.1, sig.2
        );
        match &det_signature {
            None => det_signature = Some(sig),
            Some(prev) => assert_eq!(
                &sig, prev,
                "portability: the deterministic schedule itself is identical"
            ),
        }
    }
    println!("\nportability verified: deterministic commits/aborts/rounds are");
    println!("bit-identical across thread counts (speculative ones are not).");
}
