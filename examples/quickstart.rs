//! Quickstart: one program, three schedulers.
//!
//! A toy "last writer wins" register bank where the final values depend on
//! the schedule. Running it serially, speculatively, and deterministically
//! shows the paper's design point: the *program* is non-deterministic, and
//! determinism is a property you switch on at run time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deterministic_galois::core::{Ctx, Executor, MarkTable, OpResult, Schedule};
use std::sync::Mutex;

const BUCKETS: usize = 8;
const TASKS: u64 = 10_000;

fn run(schedule: Schedule, threads: usize) -> Vec<u64> {
    let regs: Vec<Mutex<u64>> = (0..BUCKETS).map(|_| Mutex::new(0)).collect();
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        let b = (*t % BUCKETS as u64) as u32;
        ctx.acquire(b)?; // lock the abstract location
        ctx.failsafe()?; // reads done; writes may begin
        *regs[b as usize].lock().unwrap() = *t;
        Ok(())
    };
    let marks = MarkTable::new(BUCKETS);
    let report = Executor::new()
        .threads(threads)
        .schedule(schedule)
        .iterate((0..TASKS).collect())
        .run(&marks, &op);
    assert_eq!(report.stats.committed, TASKS);
    regs.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

fn main() {
    println!("serial reference:   {:?}", run(Schedule::Serial, 1));

    let det1 = run(Schedule::deterministic(), 1);
    let det4 = run(Schedule::deterministic(), 4);
    println!("deterministic (1t): {det1:?}");
    println!("deterministic (4t): {det4:?}");
    assert_eq!(det1, det4, "portability: same output at any thread count");

    let spec = run(Schedule::Speculative, 4);
    println!("speculative (4t):   {spec:?}   <- may differ run to run");

    println!(
        "\nOn-demand determinism: the operator never changed; only the\n\
         Schedule did. Deterministic runs are identical for every thread\n\
         count; speculative runs trade that guarantee for speed."
    );
}
