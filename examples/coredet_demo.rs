//! CoreDet-style determinism-by-scheduling, and what it costs.
//!
//! A racy threaded program — every thread observes a shared counter — runs
//! under the native scheduler and under the DMP-O-style deterministic
//! scheduler of `coredet-sim`. Native runs may interleave differently every
//! time; CoreDet runs are bit-identical. The virtual-time model then shows
//! the paper's Figure 6 point: this kind of determinism collapses on
//! synchronization-heavy irregular programs.
//!
//! ```text
//! cargo run --release --example coredet_demo
//! ```

use deterministic_galois::coredet::kernels::Kernel;
use deterministic_galois::coredet::model::{coredet_makespan_ns, native_makespan_ns};
use deterministic_galois::coredet::{DetRuntime, Mode};
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

fn observations(mode: Mode) -> Vec<Vec<u64>> {
    const THREADS: usize = 4;
    let counter = AtomicU64::new(0);
    let seen: Vec<Mutex<Vec<u64>>> = (0..THREADS).map(|_| Mutex::new(Vec::new())).collect();
    DetRuntime::run(THREADS, mode, |w| {
        for _ in 0..20 {
            w.work(500);
            let prev = w.fetch_add(&counter, 1);
            seen[w.tid()].lock().unwrap().push(prev);
        }
    });
    seen.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

fn main() {
    println!("racy program, native scheduling (two runs):");
    let a = observations(Mode::Native);
    let b = observations(Mode::Native);
    println!("  run 1, thread 0 saw: {:?}...", &a[0][..8.min(a[0].len())]);
    println!("  run 2, thread 0 saw: {:?}...", &b[0][..8.min(b[0].len())]);
    println!(
        "  identical: {}  (may be true by luck on an idle machine)",
        a == b
    );

    let mode = Mode::CoreDet { quantum: 2_000 };
    let c = observations(mode);
    let d = observations(mode);
    println!("\nsame program under CoreDet-style scheduling (two runs):");
    println!("  run 1, thread 0 saw: {:?}...", &c[0][..8]);
    println!("  run 2, thread 0 saw: {:?}...", &d[0][..8]);
    assert_eq!(c, d, "deterministic by construction");
    println!("  identical: true (guaranteed)");

    println!("\nand what it costs (DMP-O model, 8 virtual threads):");
    for k in Kernel::ALL {
        let streams = k.streams(8, 0.2);
        let slowdown = coredet_makespan_ns(&streams, 50_000.0) / native_makespan_ns(&streams);
        println!("  {:<14} {slowdown:>6.2}x slowdown", k.name());
    }
    println!(
        "\ncoarse-grain PARSEC kernels tolerate it; fine-grain irregular\n\
         programs (bfs/dmr/dt) serialize — the paper's Figure 6."
    );
}
