//! End-to-end Delaunay pipeline: triangulate random points, then refine all
//! triangles to a 30° minimum angle — the paper's dt and dmr benchmarks
//! chained together.
//!
//! The scheduler is chosen on the command line (the paper's "command-line
//! parameter" for on-demand determinism):
//!
//! ```text
//! cargo run --release --example mesh_refinement -- [spec|det|serial] [points] [threads]
//! ```

use deterministic_galois::apps::{dmr, dt};
use deterministic_galois::core::{DetOptions, Executor, Schedule};
use deterministic_galois::geometry::point::random_points;
use deterministic_galois::mesh::check;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "det".into());
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let threads: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let schedule = match mode.as_str() {
        "spec" => Schedule::Speculative,
        "serial" => Schedule::Serial,
        "det" => Schedule::Deterministic(DetOptions {
            locality_spread: 16,
            ..Default::default()
        }),
        other => {
            eprintln!("unknown mode {other}; use spec|det|serial");
            std::process::exit(2);
        }
    };
    let exec = Executor::new().threads(threads).schedule(schedule);

    println!("triangulating {n} random points ({mode}, {threads} threads)...");
    let points = random_points(n, 7);
    let t0 = std::time::Instant::now();
    let (mesh, report) = dt::galois(&points, 7, &exec);
    println!(
        "  {} triangles in {:?} ({} tasks, {} aborts, {} rounds)",
        mesh.num_tris_alive(),
        t0.elapsed(),
        report.stats.committed,
        report.stats.aborted,
        report.stats.rounds,
    );
    check::validate(&mesh).expect("structurally valid");
    check::check_delaunay(&mesh).expect("Delaunay");

    // The dmr benchmark proper starts from a purpose-built input mesh with
    // refinement headroom; build one over the same points.
    let mesh = dmr::make_input(n, 7);
    let before = check::quality(&mesh);
    println!(
        "refining: {} triangles, {} bad, min angle {:.2}deg",
        before.triangles, before.bad, before.min_angle_deg
    );
    let t0 = std::time::Instant::now();
    let report = dmr::galois(&mesh, &exec);
    let after = check::quality(&mesh);
    println!(
        "  -> {} triangles, {} bad, min angle {:.2}deg in {:?} ({} refinements, {} aborts)",
        after.triangles,
        after.bad,
        after.min_angle_deg,
        t0.elapsed(),
        report.stats.committed,
        report.stats.aborted,
    );
    check::validate(&mesh).expect("still valid");
    check::check_delaunay(&mesh).expect("still Delaunay");
    assert_eq!(after.bad, 0, "all refinable bad triangles fixed");
    println!("mesh is valid, Delaunay, and fully refined.");
}
