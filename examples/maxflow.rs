//! Preflow-push max-flow with the global relabeling heuristic.
//!
//! Computes max flow on a random network three ways — a sequential
//! hi_pr-style solver, the speculative Galois operator, and the same
//! operator under deterministic DIG scheduling — verifies all three agree,
//! and checks the resulting flow assignment.
//!
//! ```text
//! cargo run --release --example maxflow -- [nodes] [threads]
//! ```

use deterministic_galois::apps::pfp;
use deterministic_galois::core::{Executor, Schedule};
use deterministic_galois::graph::FlowNetwork;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_096);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!("random flow network: {n} nodes x 4 edges, capacities 1..=1000");
    let net = FlowNetwork::random(n, 4, 1_000, 99);

    let t0 = std::time::Instant::now();
    let (flow_seq, stats) = pfp::seq(&net);
    println!(
        "sequential hi_pr-style: flow {flow_seq} in {:?} ({} pushes, {} relabels, {} global relabels)",
        t0.elapsed(),
        stats.pushes,
        stats.relabels,
        stats.global_relabels
    );
    net.verify_flow().expect("valid flow assignment");

    let exec = Executor::new()
        .threads(threads)
        .schedule(Schedule::Speculative);
    let t0 = std::time::Instant::now();
    let (flow_spec, report) = pfp::galois(&net, &exec);
    println!(
        "speculative ({threads}t):      flow {flow_spec} in {:?} ({} tasks, {} bouts)",
        t0.elapsed(),
        report.stats.committed,
        report.bouts
    );
    assert_eq!(flow_spec, flow_seq);
    net.verify_flow().expect("valid flow assignment");

    let exec = Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic());
    let t0 = std::time::Instant::now();
    let (flow_det, report) = pfp::galois(&net, &exec);
    println!(
        "deterministic ({threads}t):    flow {flow_det} in {:?} ({} tasks, {} rounds, {} bouts)",
        t0.elapsed(),
        report.stats.committed,
        report.stats.rounds,
        report.bouts
    );
    assert_eq!(flow_det, flow_seq);
    net.verify_flow().expect("valid flow assignment");

    println!("\nall three solvers agree: max flow = {flow_seq}");
}
